#include "midas/datagen/workload.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "midas/common/id_set.h"

namespace midas {

Graph RandomConnectedSubgraph(const Graph& g, size_t target_edges, Rng& rng) {
  auto edges = g.Edges();
  if (edges.empty()) return Graph();
  target_edges = std::min(target_edges, edges.size());

  // Seed edge.
  const auto& [su, sv] =
      edges[static_cast<size_t>(rng.UniformInt(0, edges.size() - 1))];
  std::set<std::pair<VertexId, VertexId>> chosen = {{su, sv}};
  std::set<VertexId> touched = {su, sv};

  while (chosen.size() < target_edges) {
    // Collect frontier edges adjacent to the chosen subgraph.
    std::vector<std::pair<VertexId, VertexId>> frontier;
    for (VertexId u : touched) {
      for (VertexId v : g.Neighbors(u)) {
        auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
        if (chosen.count(key) == 0) frontier.push_back(key);
      }
    }
    if (frontier.empty()) break;
    const auto& pick =
        frontier[static_cast<size_t>(rng.UniformInt(0, frontier.size() - 1))];
    chosen.insert(pick);
    touched.insert(pick.first);
    touched.insert(pick.second);
  }

  Graph query;
  std::unordered_map<VertexId, VertexId> remap;
  auto local = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VertexId id = query.AddVertex(g.label(v));
    remap.emplace(v, id);
    return id;
  };
  for (const auto& [u, v] : chosen) query.AddEdge(local(u), local(v));
  return query;
}

namespace {

Graph QueryFrom(const GraphDatabase& db, GraphId id,
                const QueryGenConfig& config, Rng& rng) {
  const Graph* g = db.Find(id);
  if (g == nullptr) return Graph();
  size_t target = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(config.min_edges),
                     static_cast<int64_t>(config.max_edges)));
  return RandomConnectedSubgraph(*g, target, rng);
}

}  // namespace

std::vector<Graph> GenerateQueries(const GraphDatabase& db,
                                   const QueryGenConfig& config, Rng& rng) {
  std::vector<Graph> queries;
  std::vector<GraphId> ids = db.Ids();
  if (ids.empty()) return queries;
  for (size_t i = 0; i < config.count; ++i) {
    GraphId id = ids[static_cast<size_t>(rng.UniformInt(0, ids.size() - 1))];
    Graph q = QueryFrom(db, id, config, rng);
    if (q.NumEdges() > 0) queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<Graph> GenerateBalancedQueries(
    const GraphDatabase& db, const std::vector<GraphId>& delta_ids,
    const QueryGenConfig& config, Rng& rng) {
  std::vector<Graph> queries;
  std::vector<GraphId> delta_live;
  for (GraphId id : delta_ids) {
    if (db.Contains(id)) delta_live.push_back(id);
  }
  if (delta_live.empty()) return GenerateQueries(db, config, rng);

  std::vector<GraphId> rest;
  IdSet delta_set{std::vector<uint32_t>(delta_live.begin(), delta_live.end())};
  for (GraphId id : db.Ids()) {
    if (!delta_set.Contains(id)) rest.push_back(id);
  }
  size_t half = config.count / 2;
  for (size_t i = 0; i < half; ++i) {
    GraphId id = delta_live[static_cast<size_t>(
        rng.UniformInt(0, delta_live.size() - 1))];
    Graph q = QueryFrom(db, id, config, rng);
    if (q.NumEdges() > 0) queries.push_back(std::move(q));
  }
  const std::vector<GraphId>& pool = rest.empty() ? delta_live : rest;
  while (queries.size() < config.count) {
    GraphId id =
        pool[static_cast<size_t>(rng.UniformInt(0, pool.size() - 1))];
    Graph q = QueryFrom(db, id, config, rng);
    if (q.NumEdges() > 0) queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace midas
