#ifndef MIDAS_CLUSTER_FEATURE_H_
#define MIDAS_CLUSTER_FEATURE_H_

#include <string>
#include <vector>

#include "midas/graph/graph_database.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// FCT-based feature space for coarse clustering (Sections 2.3 and 3.3).
///
/// CATAPULT used frequent subtrees as the clustering feature vector; MIDAS
/// replaces them with frequent closed trees, whose closure property permits
/// incremental maintenance. A FeatureSpace snapshots the FCT universe at
/// cluster-build time; feature vectors are binary containment indicators.
///
/// For graphs already in the database, containment is read off the FCT
/// occurrence lists (no isomorphism tests). For graphs not yet indexed
/// (cluster assignment of Δ⁺ happens before FCT maintenance in Algorithm 1,
/// line 1), containment falls back to VF2 against the small feature trees.
class FeatureSpace {
 public:
  FeatureSpace() = default;

  /// Snapshots the frequent closed trees of `fcts` as the feature universe.
  explicit FeatureSpace(const FctSet& fcts);

  /// Explicit feature universe (plain CATAPULT uses frequent — not closed —
  /// subtrees). trees[i]'s occurrence list is occurrences[i].
  FeatureSpace(std::vector<Graph> trees, std::vector<IdSet> occurrences);

  size_t Dimension() const { return trees_.size(); }

  /// Feature vector for a database graph via occurrence lists.
  std::vector<double> VectorForId(GraphId id) const;

  /// Feature vector for an arbitrary graph via subgraph isomorphism.
  std::vector<double> VectorForGraph(const Graph& g) const;

  const std::vector<Graph>& trees() const { return trees_; }

 private:
  std::vector<Graph> trees_;
  std::vector<std::string> canons_;
  std::vector<IdSet> occurrences_;  // snapshot of occurrence lists
};

}  // namespace midas

#endif  // MIDAS_CLUSTER_FEATURE_H_
