#ifndef MIDAS_CLUSTER_CLUSTERING_H_
#define MIDAS_CLUSTER_CLUSTERING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "midas/cluster/feature.h"
#include "midas/common/id_set.h"
#include "midas/common/parallel.h"
#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// Stable id of a graph cluster.
using ClusterId = uint32_t;

/// One graph cluster with its feature-space centroid.
struct Cluster {
  ClusterId id = 0;
  IdSet members;
  /// Per-dimension feature sums; centroid = sums / |members|.
  std::vector<double> feature_sums;

  std::vector<double> Centroid() const;
};

/// Two-step clustering of the database (Section 2.3) with incremental
/// maintenance (Section 4.3).
///
/// Coarse clustering: k-means (k-means++ seeding) over FCT feature vectors.
/// Fine clustering: coarse clusters larger than max_cluster_size are split
/// greedily by approximate MCCS similarity, seeding a sub-cluster from the
/// largest remaining member and filling it with its most similar peers.
///
/// Maintenance (Algorithm 1, lines 1-2 and 6): new graphs are assigned to
/// the cluster with the nearest centroid in the *build-time* feature space
/// (kept inside FeatureSpace so Δ⁺ assignment needs no re-mining); deleted
/// graphs are removed; oversized clusters are re-split. The set of affected
/// cluster ids (C⁺ / C⁻) is reported so only their CSGs are refreshed.
class ClusterSet {
 public:
  struct Config {
    size_t num_coarse = 8;        ///< k for the coarse k-means
    size_t max_cluster_size = 60; ///< N, fine-clustering threshold
    int kmeans_iterations = 25;
    int mccs_restarts = 2;
  };

  ClusterSet() = default;

  /// Builds clusters of db from scratch using the FCT feature space.
  /// `pool` parallelizes the MCCS similarity rows of the fine splits (the
  /// dominant cost); results are thread-count-invariant because each pair
  /// draws its own SplitSeed-derived Rng, serial path included.
  static ClusterSet Build(const GraphDatabase& db, const FctSet& fcts,
                          const Config& config, Rng& rng,
                          TaskPool* pool = nullptr);

  /// Builds clusters with an explicit feature space (plain CATAPULT mode).
  static ClusterSet Build(const GraphDatabase& db, FeatureSpace features,
                          const Config& config, Rng& rng,
                          TaskPool* pool = nullptr);

  /// Assigns each added graph to the nearest-centroid cluster.
  /// Returns the affected cluster ids (C⁺).
  std::vector<ClusterId> AssignGraphs(const GraphDatabase& db,
                                      const std::vector<GraphId>& added_ids);

  /// Removes deleted graphs from their clusters. Returns affected ids (C⁻);
  /// clusters left empty are dropped.
  std::vector<ClusterId> RemoveGraphs(const std::vector<GraphId>& removed_ids);

  /// Fine-splits oversized clusters; returns ids of newly created clusters.
  std::vector<ClusterId> SplitOversized(const GraphDatabase& db, Rng& rng,
                                        TaskPool* pool = nullptr);

  const std::map<ClusterId, Cluster>& clusters() const { return clusters_; }
  /// Cluster of a graph, or -1 if unknown.
  int ClusterOf(GraphId id) const;
  size_t size() const { return clusters_.size(); }

  const Config& config() const { return config_; }
  const FeatureSpace& feature_space() const { return features_; }

 private:
  ClusterId NewCluster();
  void AddMember(Cluster& c, GraphId id, const std::vector<double>& vec);
  void RemoveMember(Cluster& c, GraphId id, const std::vector<double>& vec);
  /// Splits one oversized cluster by MCCS similarity; returns new ids.
  std::vector<ClusterId> SplitCluster(const GraphDatabase& db, ClusterId cid,
                                      Rng& rng, TaskPool* pool);

  Config config_;
  FeatureSpace features_;
  std::map<ClusterId, Cluster> clusters_;
  std::map<GraphId, ClusterId> graph_cluster_;
  /// Feature vector of every member at the time it was added, so removal
  /// can decrement centroid sums exactly even for graphs assigned after the
  /// feature-space snapshot was taken.
  std::map<GraphId, std::vector<double>> vectors_;
  ClusterId next_id_ = 0;
};

}  // namespace midas

#endif  // MIDAS_CLUSTER_CLUSTERING_H_
