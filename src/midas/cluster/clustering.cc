#include "midas/cluster/clustering.h"

#include <algorithm>
#include <limits>

#include "midas/cluster/kmeans.h"
#include "midas/common/stats.h"
#include "midas/graph/mccs.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {
namespace {

void CountClusterEvent(const char* name, uint64_t n = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled() && n > 0) reg.GetCounter(name)->Increment(n);
}

}  // namespace

std::vector<double> Cluster::Centroid() const {
  std::vector<double> c = feature_sums;
  if (members.empty()) return c;
  for (double& x : c) x /= static_cast<double>(members.size());
  return c;
}

ClusterId ClusterSet::NewCluster() {
  CountClusterEvent("midas_cluster_created_total");
  ClusterId id = next_id_++;
  Cluster c;
  c.id = id;
  c.feature_sums.assign(features_.Dimension(), 0.0);
  clusters_.emplace(id, std::move(c));
  return id;
}

void ClusterSet::AddMember(Cluster& c, GraphId id,
                           const std::vector<double>& vec) {
  if (!c.members.Insert(id)) return;
  for (size_t j = 0; j < c.feature_sums.size() && j < vec.size(); ++j) {
    c.feature_sums[j] += vec[j];
  }
  graph_cluster_[id] = c.id;
  vectors_[id] = vec;
}

void ClusterSet::RemoveMember(Cluster& c, GraphId id,
                              const std::vector<double>& vec) {
  if (!c.members.Erase(id)) return;
  for (size_t j = 0; j < c.feature_sums.size() && j < vec.size(); ++j) {
    c.feature_sums[j] -= vec[j];
  }
  graph_cluster_.erase(id);
  vectors_.erase(id);
}

ClusterSet ClusterSet::Build(const GraphDatabase& db, const FctSet& fcts,
                             const Config& config, Rng& rng, TaskPool* pool) {
  return Build(db, FeatureSpace(fcts), config, rng, pool);
}

ClusterSet ClusterSet::Build(const GraphDatabase& db, FeatureSpace features,
                             const Config& config, Rng& rng, TaskPool* pool) {
  obs::TraceSpan build_span("midas_cluster_build_ms");
  ClusterSet set;
  set.config_ = config;
  set.features_ = std::move(features);

  std::vector<GraphId> ids = db.Ids();
  std::vector<std::vector<double>> points;
  points.reserve(ids.size());
  for (GraphId id : ids) points.push_back(set.features_.VectorForId(id));

  KmeansResult km =
      KMeans(points, config.num_coarse, rng, config.kmeans_iterations);

  // Materialize non-empty coarse clusters.
  std::map<int, ClusterId> coarse_to_id;
  for (size_t i = 0; i < ids.size(); ++i) {
    int c = km.assignment[i];
    auto it = coarse_to_id.find(c);
    ClusterId cid =
        it == coarse_to_id.end() ? set.NewCluster() : it->second;
    coarse_to_id.emplace(c, cid);
    set.AddMember(set.clusters_.at(cid), ids[i], points[i]);
  }

  set.SplitOversized(db, rng, pool);
  return set;
}

int ClusterSet::ClusterOf(GraphId id) const {
  auto it = graph_cluster_.find(id);
  return it == graph_cluster_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<ClusterId> ClusterSet::AssignGraphs(
    const GraphDatabase& db, const std::vector<GraphId>& added_ids) {
  IdSet affected;
  uint64_t assigned = 0;
  for (GraphId id : added_ids) {
    const Graph* g = db.Find(id);
    if (g == nullptr) continue;
    std::vector<double> vec = features_.VectorForGraph(*g);
    ClusterId best = 0;
    double best_d = std::numeric_limits<double>::max();
    bool found = false;
    for (const auto& [cid, cluster] : clusters_) {
      if (cluster.members.empty()) continue;
      double d = EuclideanDistance(vec, cluster.Centroid());
      if (d < best_d) {
        best_d = d;
        best = cid;
        found = true;
      }
    }
    if (!found) best = NewCluster();
    AddMember(clusters_.at(best), id, vec);
    affected.Insert(best);
    ++assigned;
  }
  CountClusterEvent("midas_cluster_assigned_total", assigned);
  return std::vector<ClusterId>(affected.begin(), affected.end());
}

std::vector<ClusterId> ClusterSet::RemoveGraphs(
    const std::vector<GraphId>& removed_ids) {
  IdSet affected;
  uint64_t removed = 0;
  for (GraphId id : removed_ids) {
    auto it = graph_cluster_.find(id);
    if (it == graph_cluster_.end()) continue;
    ClusterId cid = it->second;
    Cluster& c = clusters_.at(cid);
    // The graph itself may already be deleted from the database, so the
    // decrement uses the vector cached when the member was added.
    auto vit = vectors_.find(id);
    std::vector<double> vec =
        vit != vectors_.end() ? vit->second : features_.VectorForId(id);
    RemoveMember(c, id, vec);
    affected.Insert(cid);
    ++removed;
    if (c.members.empty()) clusters_.erase(cid);
  }
  CountClusterEvent("midas_cluster_removed_total", removed);
  return std::vector<ClusterId>(affected.begin(), affected.end());
}

std::vector<ClusterId> ClusterSet::SplitOversized(const GraphDatabase& db,
                                                  Rng& rng, TaskPool* pool) {
  std::vector<ClusterId> oversized;
  for (const auto& [cid, c] : clusters_) {
    if (c.members.size() > config_.max_cluster_size) oversized.push_back(cid);
  }
  std::vector<ClusterId> created;
  for (ClusterId cid : oversized) {
    std::vector<ClusterId> fresh = SplitCluster(db, cid, rng, pool);
    if (!fresh.empty()) CountClusterEvent("midas_cluster_splits_total");
    created.insert(created.end(), fresh.begin(), fresh.end());
  }
  return created;
}

std::vector<ClusterId> ClusterSet::SplitCluster(const GraphDatabase& db,
                                                ClusterId cid, Rng& rng,
                                                TaskPool* pool) {
  Cluster& big = clusters_.at(cid);
  std::vector<GraphId> members(big.members.begin(), big.members.end());
  size_t cap = config_.max_cluster_size;
  std::vector<ClusterId> created;
  if (members.size() <= cap) return created;

  // Greedy MCCS grouping: seed a sub-cluster with the largest remaining
  // graph, fill with the `cap - 1` most MCCS-similar remaining graphs.
  std::vector<bool> taken(members.size(), false);
  std::vector<std::vector<size_t>> groups;
  size_t remaining = members.size();
  while (remaining > 0) {
    // Seed: largest remaining graph (most edges).
    size_t seed = members.size();
    size_t seed_edges = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (taken[i]) continue;
      const Graph* g = db.Find(members[i]);
      size_t e = g != nullptr ? g->NumEdges() : 0;
      if (seed == members.size() || e > seed_edges) {
        seed = i;
        seed_edges = e;
      }
    }
    taken[seed] = true;
    --remaining;
    std::vector<size_t> group = {seed};

    if (remaining > 0 && cap > 1) {
      const Graph* gs = db.Find(members[seed]);
      // One parent draw salts this seed iteration; every pair then derives
      // its own Rng from (salt, member id). The serial and parallel paths
      // split identically, so the grouping is thread-count-invariant.
      uint64_t salt = rng.engine()();
      std::vector<size_t> pending;
      for (size_t i = 0; i < members.size(); ++i) {
        if (!taken[i]) pending.push_back(i);
      }
      std::vector<std::pair<double, size_t>> sims(pending.size());
      ParallelFor(pool, pending.size(), [&](size_t k) {
        size_t i = pending[k];
        const Graph* gi = db.Find(members[i]);
        double sim = 0.0;
        if (gs != nullptr && gi != nullptr) {
          Rng pair_rng(SplitSeed(salt, members[i]));
          sim = MccsSimilarity(*gs, *gi, pair_rng, config_.mccs_restarts);
        }
        sims[k] = {-sim, i};  // descending similarity
      });
      std::sort(sims.begin(), sims.end());
      for (size_t k = 0; k < sims.size() && group.size() < cap; ++k) {
        group.push_back(sims[k].second);
        taken[sims[k].second] = true;
        --remaining;
      }
    }
    groups.push_back(std::move(group));
  }

  // First group stays in the original cluster id; the rest become new.
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    ClusterId target;
    if (gi == 0) {
      target = cid;
      Cluster& c = clusters_.at(cid);
      c.members.clear();
      std::fill(c.feature_sums.begin(), c.feature_sums.end(), 0.0);
    } else {
      target = NewCluster();
      created.push_back(target);
    }
    for (size_t idx : groups[gi]) {
      GraphId id = members[idx];
      auto vit = vectors_.find(id);
      std::vector<double> vec =
          vit != vectors_.end() ? vit->second : features_.VectorForId(id);
      AddMember(clusters_.at(target), id, vec);
    }
  }
  return created;
}

}  // namespace midas
