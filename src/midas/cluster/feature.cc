#include "midas/cluster/feature.h"

#include "midas/graph/subgraph_iso.h"

namespace midas {

FeatureSpace::FeatureSpace(std::vector<Graph> trees,
                           std::vector<IdSet> occurrences)
    : trees_(std::move(trees)), occurrences_(std::move(occurrences)) {
  canons_.resize(trees_.size());
}

FeatureSpace::FeatureSpace(const FctSet& fcts) {
  for (const FctEntry* entry : fcts.FrequentClosedTrees()) {
    trees_.push_back(entry->tree);
    canons_.push_back(entry->canon);
    occurrences_.push_back(entry->occurrences);
  }
}

std::vector<double> FeatureSpace::VectorForId(GraphId id) const {
  std::vector<double> v(trees_.size(), 0.0);
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (occurrences_[i].Contains(id)) v[i] = 1.0;
  }
  return v;
}

std::vector<double> FeatureSpace::VectorForGraph(const Graph& g) const {
  std::vector<double> v(trees_.size(), 0.0);
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (ContainsSubgraph(trees_[i], g)) v[i] = 1.0;
  }
  return v;
}

}  // namespace midas
