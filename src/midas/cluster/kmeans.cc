#include "midas/cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "midas/common/stats.h"

namespace midas {
namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = EuclideanDistance(a, b);
  return d * d;
}

}  // namespace

KmeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k,
                    Rng& rng, int max_iterations) {
  KmeansResult result;
  size_t n = points.size();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);

  // k-means++ seeding.
  std::vector<size_t> seeds;
  seeds.push_back(static_cast<size_t>(rng.UniformInt(0, n - 1)));
  std::vector<double> d2(n, 0.0);
  while (seeds.size() < k) {
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (size_t s : seeds) best = std::min(best, Dist2(points[i], points[s]));
      d2[i] = best;
    }
    int pick = rng.PickWeighted(d2);
    if (pick < 0) {
      // All remaining distances zero: duplicate points; pick round-robin.
      pick = static_cast<int>(seeds.size() % n);
    }
    seeds.push_back(static_cast<size_t>(pick));
  }

  result.centroids.reserve(k);
  for (size_t s : seeds) result.centroids.push_back(points[s]);
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        double d = Dist2(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update.
    size_t dim = points[0].size();
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(result.assignment[i]);
      ++counts[c];
      for (size_t j = 0; j < dim && j < points[i].size(); ++j) {
        sums[c][j] += points[i][j];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t j = 0; j < dim; ++j) {
        sums[c][j] /= static_cast<double>(counts[c]);
      }
      result.centroids[c] = std::move(sums[c]);
    }
  }
  return result;
}

}  // namespace midas
