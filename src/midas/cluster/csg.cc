#include "midas/cluster/csg.h"

#include <algorithm>

#include "midas/graph/closure_graph.h"

namespace midas {

uint64_t CsgEdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

Csg Csg::Build(const GraphDatabase& db, const IdSet& members) {
  Csg csg;
  for (GraphId id : members) {
    const Graph* g = db.Find(id);
    if (g != nullptr) csg.AddGraph(id, *g);
  }
  return csg;
}

void Csg::AddGraph(GraphId id, const Graph& g) {
  if (!members_.Insert(id)) return;
  std::vector<int> mapping = GreedyAlign(g, skeleton_);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (mapping[v] < 0) {
      mapping[v] = static_cast<int>(skeleton_.AddVertex(g.label(v)));
    }
  }
  for (const auto& [u, v] : g.Edges()) {
    VertexId su = static_cast<VertexId>(mapping[u]);
    VertexId sv = static_cast<VertexId>(mapping[v]);
    skeleton_.AddEdge(su, sv);  // no-op when already present
    edge_members_[CsgEdgeKey(su, sv)].Insert(id);
  }
}

void Csg::RemoveGraph(GraphId id) {
  if (!members_.Erase(id)) return;
  for (auto it = edge_members_.begin(); it != edge_members_.end();) {
    it->second.Erase(id);
    if (it->second.empty()) {
      VertexId u = static_cast<VertexId>(it->first >> 32);
      VertexId v = static_cast<VertexId>(it->first & 0xffffffffu);
      skeleton_.RemoveEdge(u, v);
      it = edge_members_.erase(it);
    } else {
      ++it;
    }
  }
}

const IdSet& Csg::EdgeMembers(VertexId u, VertexId v) const {
  static const IdSet& kEmpty = *new IdSet();  // leaked: avoids exit-time dtor
  auto it = edge_members_.find(CsgEdgeKey(u, v));
  return it == edge_members_.end() ? kEmpty : it->second;
}

std::vector<std::pair<std::pair<VertexId, VertexId>, const IdSet*>>
Csg::Edges() const {
  std::vector<std::pair<std::pair<VertexId, VertexId>, const IdSet*>> out;
  out.reserve(edge_members_.size());
  for (const auto& [key, ids] : edge_members_) {
    VertexId u = static_cast<VertexId>(key >> 32);
    VertexId v = static_cast<VertexId>(key & 0xffffffffu);
    out.push_back({{u, v}, &ids});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace midas
