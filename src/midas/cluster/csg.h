#ifndef MIDAS_CLUSTER_CSG_H_
#define MIDAS_CLUSTER_CSG_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "midas/common/id_set.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Canonical 64-bit key of an undirected skeleton edge (u, v).
uint64_t CsgEdgeKey(VertexId u, VertexId v);

/// Cluster summary graph (Sections 2.3 and 4.4).
///
/// A CSG integrates every data graph of a cluster into one labeled graph by
/// iterated graph closure: each member is aligned onto the summary skeleton
/// with a greedy label-preserving mapping, unmatched vertices/edges are
/// appended, and each skeleton edge carries the id-set of the member graphs
/// that contributed it (the edge "label" of Section 4.4).
///
/// Maintenance follows the paper's two steps exactly:
///  (1) insertion: align G⁺, add its id to matched edges, materialize new
///      vertices/edges for the unmatched remainder;
///  (2) deletion: strip the id from all edge id-sets; edges whose id-set
///      empties are removed (their in-cluster frequency reached 0).
class Csg {
 public:
  Csg() = default;

  /// Builds the summary of the given member graphs.
  static Csg Build(const GraphDatabase& db, const IdSet& members);

  /// Integrates one graph (maintenance step 1).
  void AddGraph(GraphId id, const Graph& g);
  /// Removes one graph's contributions (maintenance step 2).
  void RemoveGraph(GraphId id);

  /// The labeled skeleton. Vertices with no incident edges may linger after
  /// deletions; walks and pattern extraction skip them.
  const Graph& skeleton() const { return skeleton_; }

  /// Member ids that contributed edge (u, v); empty set if absent.
  const IdSet& EdgeMembers(VertexId u, VertexId v) const;

  /// All live edges as ((u, v), member-set) with u < v.
  std::vector<std::pair<std::pair<VertexId, VertexId>, const IdSet*>> Edges()
      const;

  /// Ids of all member graphs currently summarized.
  const IdSet& members() const { return members_; }

  size_t NumLiveEdges() const { return edge_members_.size(); }

 private:
  Graph skeleton_;
  std::unordered_map<uint64_t, IdSet> edge_members_;
  IdSet members_;
};

}  // namespace midas

#endif  // MIDAS_CLUSTER_CSG_H_
