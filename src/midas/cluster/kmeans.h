#ifndef MIDAS_CLUSTER_KMEANS_H_
#define MIDAS_CLUSTER_KMEANS_H_

#include <vector>

#include "midas/common/rng.h"

namespace midas {

/// Result of Lloyd's k-means.
struct KmeansResult {
  /// assignment[i] = cluster index of point i, in [0, k).
  std::vector<int> assignment;
  std::vector<std::vector<double>> centroids;
  int iterations = 0;
};

/// k-means with k-means++ seeding [8] (coarse clustering step of
/// Section 2.3). Deterministic given the Rng seed. If there are fewer
/// points than k, each point gets its own cluster.
KmeansResult KMeans(const std::vector<std::vector<double>>& points, size_t k,
                    Rng& rng, int max_iterations = 25);

}  // namespace midas

#endif  // MIDAS_CLUSTER_KMEANS_H_
