#ifndef MIDAS_COMMON_CHAOS_H_
#define MIDAS_COMMON_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace midas {
namespace chaos {

/// One scripted disturbance of a chaos drill. Events are pinned to virtual
/// time (a 0-based step index the driver advances; typically one step per
/// submitted batch wave), never to the wall clock — which is what makes a
/// schedule replayable: the same seed produces the same events at the same
/// steps, so every overload / ladder / breaker transition the drill provokes
/// happens in the same order on every run.
struct ChaosEvent {
  enum class Kind {
    kArmFailpoint,     ///< arm `failpoint_spec` (fail::ArmSpec grammar)
    kLoadBurst,        ///< submit `burst_batches` extra batches this step
    kMemoryPressure,   ///< set the watchdog's synthetic source to
                       ///< `pressure_bytes`
    kClearPressure,    ///< zero the synthetic source
    kQuiesce,          ///< drain the host (WaitIdle) before the next step
  };

  Kind kind = Kind::kQuiesce;
  uint64_t step = 0;             ///< virtual time this event fires at
  std::string failpoint_spec;    ///< kArmFailpoint only
  int burst_batches = 0;         ///< kLoadBurst only
  size_t pressure_bytes = 0;     ///< kMemoryPressure only

  /// Stable "step=N kind[:detail]" spelling for logs and replay diffs.
  std::string Describe() const;
};

const char* ChaosEventKindName(ChaosEvent::Kind kind);

/// Deterministic, seed-replayable chaos schedule: a fixed list of
/// ChaosEvents over `steps` of virtual time, generated from `seed` alone.
/// Drivers (the overload soak test, CI stress jobs) print the seed up
/// front; re-running with that seed reproduces the exact disturbance
/// sequence, so a failing overload drill is a one-line repro.
class ChaosSchedule {
 public:
  struct Config {
    uint64_t seed = 42;
    uint64_t steps = 32;
    /// Per-step probabilities of each disturbance (drawn independently).
    double burst_prob = 0.25;
    double pressure_prob = 0.2;
    double failpoint_prob = 0.15;
    /// Bounds of the drawn magnitudes.
    int max_burst_batches = 6;
    size_t max_pressure_bytes = 64u << 20;
    /// Failpoint sites the schedule arms (picked uniformly; each armed for
    /// a small drawn number of fires so chaos never wedges recovery).
    std::vector<std::string> failpoint_sites = {
        "serve.round.before_apply", "serve.round.before_publish",
        "midas.apply_update.after_fct", "midas.apply_update.after_swap",
        "journal.append.io_error"};
  };

  explicit ChaosSchedule(const Config& config);

  const Config& config() const { return config_; }
  uint64_t seed() const { return config_.seed; }
  uint64_t steps() const { return config_.steps; }
  const std::vector<ChaosEvent>& events() const { return events_; }

  /// Events scheduled at exactly `step`, in generation order.
  std::vector<ChaosEvent> EventsAt(uint64_t step) const;

  /// Multi-line human/CI-readable dump: seed, steps, then one Describe()
  /// line per event — paste the seed back to replay.
  std::string Describe() const;

 private:
  Config config_;
  std::vector<ChaosEvent> events_;
};

}  // namespace chaos
}  // namespace midas

#endif  // MIDAS_COMMON_CHAOS_H_
