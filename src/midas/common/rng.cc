#include "midas/common/rng.h"

namespace midas {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

int Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0.0;
  if (total <= 0.0) return -1;
  double r = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  // Floating point slack: return last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return static_cast<int>(i - 1);
  }
  return -1;
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace midas
