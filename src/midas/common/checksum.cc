#include "midas/common/checksum.h"

#include <array>

namespace midas {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(uint32_t crc) {
  static const char* hex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = hex[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace midas
