#ifndef MIDAS_COMMON_IO_H_
#define MIDAS_COMMON_IO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace midas {
namespace io {

/// Storage abstraction for all durable engine state (journal, snapshots,
/// quarantine). Product code takes a `FileSystem*` (nullptr = the real
/// POSIX backend); tests and chaos drills substitute FaultyFileSystem to
/// turn every durability claim into an injectable fault matrix. This is
/// also the seam a future mmap/external-memory backend plugs into.
///
/// The durability contract mirrors POSIX:
///  - data bytes are durable only after a successful Sync (WriteFileDurable
///    syncs internally);
///  - *names* (created files, renames) are durable only after SyncDir on
///    the parent directory — rename(2) alone is not durable on ext4/xfs.
/// FaultyFileSystem::SimulateCrash enforces exactly this model, so code
/// that skips a parent-directory fsync loses the rename in tests the same
/// way it would on a real power cut.

/// An open append-mode file (the journal's handle shape).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual bool Append(std::string_view data, std::string* error) = 0;
  /// Flushes appended bytes to stable storage (fdatasync semantics).
  virtual bool Sync(std::string* error) = 0;
  /// Truncates to `size` bytes and syncs the new length.
  virtual bool Truncate(uint64_t size, std::string* error) = 0;
  /// Current file size (appended bytes included).
  virtual uint64_t Size() const = 0;
};

enum class ReadStatus { kOk, kNotFound, kError };

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if absent. The *creation* is
  /// durable only after SyncDir(parent).
  virtual std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                                   std::string* error) = 0;
  /// Reads the whole file. kNotFound distinguishes ENOENT (often a legal
  /// state — e.g. "no journal") from real I/O failure.
  virtual ReadStatus Read(const std::string& path, std::string* content,
                          std::string* error) = 0;
  /// Creates/truncates `path`, writes `content`, fsyncs the file (not the
  /// parent directory).
  virtual bool WriteFileDurable(const std::string& path,
                                std::string_view content,
                                std::string* error) = 0;
  virtual bool Rename(const std::string& from, const std::string& to,
                      std::string* error) = 0;
  /// Fsyncs a directory so the entries created/renamed inside it are
  /// durable.
  virtual bool SyncDir(const std::string& path, std::string* error) = 0;
  virtual bool CreateDirs(const std::string& path, std::string* error) = 0;
  virtual bool RemoveAll(const std::string& path, std::string* error) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Entry names (not paths) under `path`, sorted; empty when the
  /// directory does not exist.
  virtual std::vector<std::string> ListDir(const std::string& path) = 0;
};

/// The process-wide real POSIX backend.
FileSystem& Posix();

/// Resolves the conventional nullptr-means-posix parameter.
inline FileSystem& Resolve(FileSystem* fs) { return fs ? *fs : Posix(); }

/// Parent directory of `path` ("." when it has none) — the directory whose
/// SyncDir makes `path`'s name durable.
std::string ParentDir(const std::string& path);

/// Fault-injecting wrapper over another FileSystem (default: the POSIX
/// backend). Two independent mechanisms:
///
///  1. **Named fault sites**, consulted through the failpoint registry
///     (common/failpoint.h) so tests, MIDAS_FAILPOINTS and ChaosSchedule
///     all arm them with the same "name[:skip[:fires]]" grammar:
///
///       io.open_append.error     open fails (EIO)
///       io.append.error          append fails, nothing written
///       io.append.enospc        append fails, nothing written (disk full)
///       io.append.short          half the bytes land, then failure
///       io.sync.error            fsync fails
///       io.sync.lie              fsync reports success but durability does
///                                not advance (lost on SimulateCrash)
///       io.truncate.error        ftruncate fails
///       io.read.error            read fails
///       io.write_file.error      whole-file write fails, nothing written
///       io.write_file.enospc     half the content lands, then ENOSPC
///       io.rename.error          rename fails
///       io.syncdir.error         directory fsync fails
///       io.syncdir.lie           directory fsync lies (names stay volatile)
///       io.create_dirs.error     mkdir -p fails
///
///  2. **Seeded bit rot**: ArmBitFlip(path_substr, bit) flips one bit of
///     every subsequent Read whose path contains the substring —
///     deterministic, so a corruption matrix is a plain loop over bits.
///
/// Crash model (SimulateCrash): appended bytes past the last honest Sync
/// are truncated away; created files, renames and removals whose parent
/// directory was never honestly synced are rolled back, newest first.
/// Removals are staged (moved aside, deleted on SyncDir) so a crash can
/// resurrect them — the real torn-rename hazard.
class FaultyFileSystem : public FileSystem {
 public:
  explicit FaultyFileSystem(FileSystem* base = nullptr);
  ~FaultyFileSystem() override;

  std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                           std::string* error) override;
  ReadStatus Read(const std::string& path, std::string* content,
                  std::string* error) override;
  bool WriteFileDurable(const std::string& path, std::string_view content,
                        std::string* error) override;
  bool Rename(const std::string& from, const std::string& to,
              std::string* error) override;
  bool SyncDir(const std::string& path, std::string* error) override;
  bool CreateDirs(const std::string& path, std::string* error) override;
  bool RemoveAll(const std::string& path, std::string* error) override;
  bool Exists(const std::string& path) override;
  std::vector<std::string> ListDir(const std::string& path) override;

  /// Tears the world down to what POSIX guarantees is durable: un-synced
  /// appended bytes vanish, un-synced metadata ops roll back (newest
  /// first). Open WritableFiles handed out earlier become stale — reopen
  /// after a crash, as real recovery code does.
  void SimulateCrash();

  /// Read-side bit rot: flips bit (`bit_index` % file bits) of every Read
  /// whose path contains `path_substr`.
  void ArmBitFlip(const std::string& path_substr, uint64_t bit_index);
  void ClearBitFlips();

  /// At-rest bit rot: flips one bit of the file on disk, in place.
  bool CorruptOnDisk(const std::string& path, uint64_t bit_index,
                     std::string* error);

  struct Counters {
    uint64_t injected_errors = 0;  ///< any io.*.error / enospc fire
    uint64_t short_writes = 0;
    uint64_t sync_lies = 0;        ///< io.sync.lie + io.syncdir.lie fires
    uint64_t bit_flips = 0;
    uint64_t crashes = 0;
    uint64_t rolled_back_ops = 0;  ///< metadata ops undone by crashes
  };
  Counters counters() const;

 private:
  friend class FaultyWritableFile;

  /// One metadata op pending until its parent directory is honestly
  /// synced.
  struct PendingOp {
    enum class Kind { kCreate, kRename, kRemove };
    Kind kind;
    std::string a;  ///< created path / rename-from / removed path
    std::string b;  ///< rename-to / staging path of a removal
  };
  struct BitFlip {
    std::string path_substr;
    uint64_t bit_index = 0;
  };

  void RecordPending(PendingOp op);
  void NoteDataSynced(const std::string& path, uint64_t durable_size);
  bool SyncIsLie();

  FileSystem* base_;
  mutable std::mutex mu_;
  /// Per-path durable byte count for append files (absent = fully durable).
  std::vector<std::pair<std::string, uint64_t>> durable_sizes_;
  /// Metadata ops keyed by parent dir, in commit order.
  std::vector<std::pair<std::string, PendingOp>> pending_;
  std::vector<BitFlip> bit_flips_;
  uint64_t stage_counter_ = 0;
  Counters counters_;
};

}  // namespace io
}  // namespace midas

#endif  // MIDAS_COMMON_IO_H_
