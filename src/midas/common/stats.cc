#include "midas/common/stats.h"

#include <algorithm>
#include <cmath>

namespace midas {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  size_t n = std::max(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double x = i < a.size() ? a[i] : 0.0;
    double y = i < b.size() ? b[i] : 0.0;
    s += (x - y) * (x - y);
  }
  return std::sqrt(s);
}

void NormalizeToDistribution(std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  if (s <= 0.0) return;
  for (double& x : v) x /= s;
}

namespace {

// Asymptotic Kolmogorov distribution complement: Q_KS(lambda).
double KolmogorovQ(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    double term = sign * 2.0 * std::exp(-2.0 * j * j * lambda * lambda);
    sum += term;
    sign = -sign;
    if (std::fabs(term) < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

}  // namespace

KsResult KsTest(const std::vector<double>& sample1,
                const std::vector<double>& sample2) {
  KsResult result;
  if (sample1.empty() || sample2.empty()) return result;

  std::vector<double> s1 = sample1;
  std::vector<double> s2 = sample2;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());

  size_t i = 0;
  size_t j = 0;
  double n1 = static_cast<double>(s1.size());
  double n2 = static_cast<double>(s2.size());
  double d = 0.0;
  while (i < s1.size() && j < s2.size()) {
    double x = std::min(s1[i], s2[j]);
    while (i < s1.size() && s1[i] <= x) ++i;
    while (j < s2.size() && s2[j] <= x) ++j;
    double f1 = static_cast<double>(i) / n1;
    double f2 = static_cast<double>(j) / n2;
    d = std::max(d, std::fabs(f1 - f2));
  }
  result.statistic = d;

  double ne = std::sqrt(n1 * n2 / (n1 + n2));
  double lambda = (ne + 0.12 + 0.11 / ne) * d;
  result.p_value = KolmogorovQ(lambda);
  return result;
}

bool KsSimilar(const std::vector<double>& sample1,
               const std::vector<double>& sample2, double alpha) {
  if (sample1.empty() || sample2.empty()) return true;
  return KsTest(sample1, sample2).p_value >= alpha;
}

}  // namespace midas
