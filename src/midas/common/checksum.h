#ifndef MIDAS_COMMON_CHECKSUM_H_
#define MIDAS_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace midas {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range. Used to
/// frame journal records and to fingerprint snapshot files in the MANIFEST —
/// a deliberately boring, dependency-free integrity check: it catches torn
/// writes and bit rot, not adversaries.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

/// Canonical 8-hex-digit lowercase spelling used in MANIFEST files and
/// journal record headers.
std::string Crc32Hex(uint32_t crc);

}  // namespace midas

#endif  // MIDAS_COMMON_CHECKSUM_H_
