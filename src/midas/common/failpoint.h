#ifndef MIDAS_COMMON_FAILPOINT_H_
#define MIDAS_COMMON_FAILPOINT_H_

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace midas {
namespace fail {

/// Named-failpoint registry for fault injection (tests and chaos drills).
///
/// A failpoint is a named site in product code — `MIDAS_FAILPOINT(name)`
/// evaluates to true when the site should fail, `MIDAS_FAILPOINT_ABORT(name)`
/// throws FailpointAbort (the SIGKILL-equivalent used to prove crash safety:
/// the abort happens between the same fsync boundaries a real kill would
/// land between, so on-disk state is identical).
///
/// Activation is explicit: Arm() in tests, or the MIDAS_FAILPOINTS
/// environment variable ("name", "name:skip", "name:skip:fires", ';' or ','
/// separated) loaded once via LoadFromEnv(). The unarmed fast path is one
/// relaxed atomic load of a global counter; sites compiled with the
/// MIDAS_FAILPOINTS=0 definition vanish entirely.
///
/// Thread safety: the registry is mutex-protected and the armed-count check
/// is atomic, so sites may be hit from any thread.

/// Thrown by MIDAS_FAILPOINT_ABORT sites. Whatever operation was in flight
/// is torn exactly as a crash would leave it; recover via RecoverEngine.
class FailpointAbort : public std::runtime_error {
 public:
  explicit FailpointAbort(const std::string& name)
      : std::runtime_error("failpoint abort: " + name), name_(name) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// True when failpoint sites are compiled into this build
/// (-DMIDAS_FAILPOINTS=ON, the default; tests skip themselves otherwise).
constexpr bool CompiledIn() {
#if defined(MIDAS_FAILPOINTS) && MIDAS_FAILPOINTS
  return true;
#else
  return false;
#endif
}

/// Arms `name`: the site ignores its first `skip` hits, then fails `fires`
/// times (fires < 0 = fail forever). Re-arming resets the hit count.
void Arm(const std::string& name, int skip = 0, int fires = 1);
void Disarm(const std::string& name);
void DisarmAll();

/// Total times the armed failpoint was evaluated (armed sites only).
int HitCount(const std::string& name);
std::vector<std::string> ArmedNames();

/// Arms every failpoint in a spec string: "name[:skip[:fires]]" entries
/// separated by ';' or ',' — the MIDAS_FAILPOINTS grammar. Returns the
/// number of failpoints armed. Chaos drivers (the serve soak test, CI
/// stress jobs) use this to arm programmatic specs without touching the
/// environment.
int ArmSpec(std::string_view spec);

/// Parses MIDAS_FAILPOINTS from the environment (idempotent; called by the
/// macros' slow path on first armed lookup is NOT automatic — call this once
/// at startup when env activation is wanted, e.g. from a chaos-drill main).
void LoadFromEnv();

/// Slow path behind the macros: returns true when the named site should
/// fail now. Cheap when nothing is armed (one relaxed atomic load).
bool ShouldFail(std::string_view name);

}  // namespace fail
}  // namespace midas

#if defined(MIDAS_FAILPOINTS) && MIDAS_FAILPOINTS
/// Evaluates to true when the named failpoint fires.
#define MIDAS_FAILPOINT(name) (::midas::fail::ShouldFail(name))
/// Simulates a crash at this site by throwing FailpointAbort.
#define MIDAS_FAILPOINT_ABORT(name)                 \
  do {                                              \
    if (::midas::fail::ShouldFail(name)) {          \
      throw ::midas::fail::FailpointAbort(name);    \
    }                                               \
  } while (0)
#else
#define MIDAS_FAILPOINT(name) (false)
#define MIDAS_FAILPOINT_ABORT(name) \
  do {                              \
  } while (0)
#endif

#endif  // MIDAS_COMMON_FAILPOINT_H_
