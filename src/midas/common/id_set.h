#ifndef MIDAS_COMMON_ID_SET_H_
#define MIDAS_COMMON_ID_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace midas {

/// A sorted, duplicate-free set of 32-bit ids backed by a flat vector.
///
/// Used throughout MIDAS for occurrence lists: the set of data-graph ids that
/// contain a tree feature, an edge, or a canned pattern. Set-algebra helpers
/// (union/intersection/difference sizes) back the coverage computations of
/// Definitions 5.5 and 6.2 without materializing temporaries.
class IdSet {
 public:
  IdSet() = default;
  IdSet(std::initializer_list<uint32_t> ids);
  /// Builds from an arbitrary (possibly unsorted, duplicated) vector.
  explicit IdSet(std::vector<uint32_t> ids);

  /// Inserts id; returns true if it was not already present.
  bool Insert(uint32_t id);
  /// Erases id; returns true if it was present.
  bool Erase(uint32_t id);
  bool Contains(uint32_t id) const;

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  /// In-place union with other.
  void UnionWith(const IdSet& other);
  /// In-place set difference (*this \ other).
  void DifferenceWith(const IdSet& other);

  size_t IntersectionSize(const IdSet& other) const;
  size_t UnionSize(const IdSet& other) const;
  /// |*this \ other|
  size_t DifferenceSize(const IdSet& other) const;

  static IdSet Union(const IdSet& a, const IdSet& b);
  static IdSet Intersection(const IdSet& a, const IdSet& b);
  static IdSet Difference(const IdSet& a, const IdSet& b);

  const std::vector<uint32_t>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const IdSet& other) const { return ids_ == other.ids_; }

 private:
  std::vector<uint32_t> ids_;
};

}  // namespace midas

#endif  // MIDAS_COMMON_ID_SET_H_
