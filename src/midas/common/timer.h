#ifndef MIDAS_COMMON_TIMER_H_
#define MIDAS_COMMON_TIMER_H_

#include <chrono>

namespace midas {

/// Wall-clock stopwatch used by the benchmark harnesses to report PMT / PGT /
/// clustering times.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace midas

#endif  // MIDAS_COMMON_TIMER_H_
