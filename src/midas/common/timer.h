#ifndef MIDAS_COMMON_TIMER_H_
#define MIDAS_COMMON_TIMER_H_

#include <chrono>

namespace midas {

/// Wall-clock stopwatch used by the benchmark harnesses and obs::TraceSpan
/// to report PMT / PGT / clustering times.
///
/// The timer starts running on construction. Pause()/Resume() make it an
/// accumulating stopwatch, so one timer can cover a non-contiguous region
/// (e.g. the two cluster-maintenance halves of Algorithm 1) without the
/// double-counting that chaining Reset()/ElapsedMs() pairs invites.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Zeroes the accumulated time and restarts the running segment.
  void Reset() {
    accumulated_ms_ = 0.0;
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops the clock, banking the current segment. No-op when paused.
  void Pause() {
    if (!running_) return;
    accumulated_ms_ += RunningMs();
    running_ = false;
  }

  /// Restarts the clock after a Pause(). No-op when already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Accumulated milliseconds across all segments, including the currently
  /// running one. Equals "since construction or last Reset()" when
  /// Pause()/Resume() were never used.
  double ElapsedMs() const {
    return accumulated_ms_ + (running_ ? RunningMs() : 0.0);
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;

  double RunningMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  Clock::time_point start_;
  double accumulated_ms_ = 0.0;
  bool running_ = true;
};

}  // namespace midas

#endif  // MIDAS_COMMON_TIMER_H_
