#include "midas/common/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "midas/common/failpoint.h"

namespace midas {
namespace io {

namespace stdfs = std::filesystem;

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string ErrnoString() { return std::strerror(errno); }

// Full-buffer write with EINTR/short-write handling.
bool WriteAllFd(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Append(std::string_view data, std::string* error) override {
    if (!WriteAllFd(fd_, data.data(), data.size())) {
      SetError(error, "write " + path_ + ": " + ErrnoString());
      return false;
    }
    size_ += data.size();
    return true;
  }

  bool Sync(std::string* error) override {
    if (::fsync(fd_) != 0) {
      SetError(error, "fsync " + path_ + ": " + ErrnoString());
      return false;
    }
    return true;
  }

  bool Truncate(uint64_t size, std::string* error) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      SetError(error, "ftruncate " + path_ + ": " + ErrnoString());
      return false;
    }
    size_ = size;
    if (::fsync(fd_) != 0) {
      SetError(error, "fsync " + path_ + ": " + ErrnoString());
      return false;
    }
    return true;
  }

  uint64_t Size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

class PosixFileSystem : public FileSystem {
 public:
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path,
                                           std::string* error) override {
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) {
      SetError(error, "open " + path + ": " + ErrnoString());
      return nullptr;
    }
    struct stat st{};
    uint64_t size = ::fstat(fd, &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                          : 0;
    return std::make_unique<PosixWritableFile>(fd, path, size);
  }

  ReadStatus Read(const std::string& path, std::string* content,
                  std::string* error) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        SetError(error, "no such file: " + path);
        return ReadStatus::kNotFound;
      }
      SetError(error, "open " + path + ": " + ErrnoString());
      return ReadStatus::kError;
    }
    content->clear();
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        SetError(error, "read " + path + ": " + ErrnoString());
        ::close(fd);
        return ReadStatus::kError;
      }
      if (n == 0) break;
      content->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return ReadStatus::kOk;
  }

  bool WriteFileDurable(const std::string& path, std::string_view content,
                        std::string* error) override {
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
      SetError(error, "open " + path + ": " + ErrnoString());
      return false;
    }
    bool ok = WriteAllFd(fd, content.data(), content.size());
    if (!ok) SetError(error, "write " + path + ": " + ErrnoString());
    if (ok && ::fsync(fd) != 0) {
      SetError(error, "fsync " + path + ": " + ErrnoString());
      ok = false;
    }
    ::close(fd);
    return ok;
  }

  bool Rename(const std::string& from, const std::string& to,
              std::string* error) override {
    std::error_code ec;
    stdfs::rename(from, to, ec);
    if (ec) {
      SetError(error, "rename " + from + " -> " + to + ": " + ec.message());
      return false;
    }
    return true;
  }

  bool SyncDir(const std::string& path, std::string* error) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      SetError(error, "open dir " + path + ": " + ErrnoString());
      return false;
    }
    bool ok = ::fsync(fd) == 0;
    if (!ok) SetError(error, "fsync dir " + path + ": " + ErrnoString());
    ::close(fd);
    return ok;
  }

  bool CreateDirs(const std::string& path, std::string* error) override {
    std::error_code ec;
    stdfs::create_directories(path, ec);
    if (ec) {
      SetError(error, "create " + path + ": " + ec.message());
      return false;
    }
    return true;
  }

  bool RemoveAll(const std::string& path, std::string* error) override {
    std::error_code ec;
    stdfs::remove_all(path, ec);
    // ENOTDIR: a parent component is a regular file, so nothing exists at
    // `path` — removing it is a no-op, same as ENOENT (which remove_all
    // already treats as success). Callers racing to create the path next
    // get the real diagnosis from CreateDirs.
    if (ec && ec != std::errc::not_a_directory) {
      SetError(error, "remove " + path + ": " + ec.message());
      return false;
    }
    return true;
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return stdfs::exists(path, ec);
  }

  std::vector<std::string> ListDir(const std::string& path) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : stdfs::directory_iterator(path, ec)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

FileSystem& Posix() {
  static PosixFileSystem* posix = new PosixFileSystem();
  return *posix;
}

std::string ParentDir(const std::string& path) {
  std::string parent = stdfs::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

// ---------------------------------------------------------------------------
// FaultyFileSystem
// ---------------------------------------------------------------------------

namespace {

std::string InjectedError(const std::string& site) {
  return "injected I/O error (failpoint " + site + ")";
}

}  // namespace

/// Wraps a base WritableFile, injecting append/sync/truncate faults and
/// maintaining the owning FaultyFileSystem's durable-length watermark.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyFileSystem* owner, std::string path,
                     std::unique_ptr<WritableFile> base)
      : owner_(owner), path_(std::move(path)), base_(std::move(base)) {}

  bool Append(std::string_view data, std::string* error) override {
    if (fail::ShouldFail("io.append.error")) {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      ++owner_->counters_.injected_errors;
      SetError(error, InjectedError("io.append.error") + ": " + path_);
      return false;
    }
    if (fail::ShouldFail("io.append.enospc")) {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      ++owner_->counters_.injected_errors;
      SetError(error, "write " + path_ + ": No space left on device " +
                          "(failpoint io.append.enospc)");
      return false;
    }
    if (fail::ShouldFail("io.append.short")) {
      // Half the bytes land, then the device gives up — the torn-tail case
      // the journal's CRC framing exists for.
      std::string half_error;
      base_->Append(data.substr(0, data.size() / 2), &half_error);
      {
        std::lock_guard<std::mutex> lock(owner_->mu_);
        ++owner_->counters_.short_writes;
      }
      SetError(error, "short write " + path_ + " (failpoint io.append.short)");
      return false;
    }
    return base_->Append(data, error);
  }

  bool Sync(std::string* error) override {
    if (fail::ShouldFail("io.sync.error")) {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      ++owner_->counters_.injected_errors;
      SetError(error, InjectedError("io.sync.error") + ": " + path_);
      return false;
    }
    if (fail::ShouldFail("io.sync.lie")) {
      // Reports success without advancing the durability watermark — the
      // classic lying-drive-cache failure mode.
      std::lock_guard<std::mutex> lock(owner_->mu_);
      ++owner_->counters_.sync_lies;
      return true;
    }
    if (!base_->Sync(error)) return false;
    owner_->NoteDataSynced(path_, base_->Size());
    return true;
  }

  bool Truncate(uint64_t size, std::string* error) override {
    if (fail::ShouldFail("io.truncate.error")) {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      ++owner_->counters_.injected_errors;
      SetError(error, InjectedError("io.truncate.error") + ": " + path_);
      return false;
    }
    if (!base_->Truncate(size, error)) return false;
    owner_->NoteDataSynced(path_, size);
    return true;
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultyFileSystem* owner_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultyFileSystem::FaultyFileSystem(FileSystem* base)
    : base_(base != nullptr ? base : &Posix()) {}

FaultyFileSystem::~FaultyFileSystem() = default;

void FaultyFileSystem::RecordPending(PendingOp op) {
  const std::string parent =
      ParentDir(op.kind == PendingOp::Kind::kRename ? op.b : op.a);
  pending_.emplace_back(parent, std::move(op));
}

void FaultyFileSystem::NoteDataSynced(const std::string& path,
                                      uint64_t durable_size) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [p, size] : durable_sizes_) {
    if (p == path) {
      size = durable_size;
      return;
    }
  }
  durable_sizes_.emplace_back(path, durable_size);
}

std::unique_ptr<WritableFile> FaultyFileSystem::OpenAppend(
    const std::string& path, std::string* error) {
  if (fail::ShouldFail("io.open_append.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.open_append.error") + ": " + path);
    return nullptr;
  }
  bool existed = base_->Exists(path);
  auto file = base_->OpenAppend(path, error);
  if (file == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!existed) {
      RecordPending({PendingOp::Kind::kCreate, path, ""});
    }
    // Bytes already on disk at open are durable; everything appended after
    // is volatile until an honest Sync.
    bool found = std::any_of(
        durable_sizes_.begin(), durable_sizes_.end(),
        [&path](const auto& entry) { return entry.first == path; });
    if (!found) durable_sizes_.emplace_back(path, file->Size());
  }
  return std::make_unique<FaultyWritableFile>(this, path, std::move(file));
}

ReadStatus FaultyFileSystem::Read(const std::string& path,
                                  std::string* content, std::string* error) {
  if (fail::ShouldFail("io.read.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.read.error") + ": " + path);
    return ReadStatus::kError;
  }
  ReadStatus status = base_->Read(path, content, error);
  if (status != ReadStatus::kOk) return status;
  std::lock_guard<std::mutex> lock(mu_);
  for (const BitFlip& flip : bit_flips_) {
    if (content->empty() ||
        path.find(flip.path_substr) == std::string::npos) {
      continue;
    }
    uint64_t bit = flip.bit_index % (content->size() * 8);
    (*content)[bit / 8] = static_cast<char>(
        static_cast<unsigned char>((*content)[bit / 8]) ^ (1u << (bit % 8)));
    ++counters_.bit_flips;
  }
  return status;
}

bool FaultyFileSystem::WriteFileDurable(const std::string& path,
                                        std::string_view content,
                                        std::string* error) {
  if (fail::ShouldFail("io.write_file.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.write_file.error") + ": " + path);
    return false;
  }
  if (fail::ShouldFail("io.write_file.enospc")) {
    // Half the content lands before the device fills: a torn file exists at
    // `path` afterwards, exactly like a real ENOSPC mid-write.
    bool existed = base_->Exists(path);
    std::string half_error;
    base_->WriteFileDurable(path, content.substr(0, content.size() / 2),
                            &half_error);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.injected_errors;
      ++counters_.short_writes;
      if (!existed) RecordPending({PendingOp::Kind::kCreate, path, ""});
    }
    SetError(error, "write " + path + ": No space left on device " +
                        "(failpoint io.write_file.enospc)");
    return false;
  }
  bool existed = base_->Exists(path);
  if (!base_->WriteFileDurable(path, content, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!existed) RecordPending({PendingOp::Kind::kCreate, path, ""});
  // The file's own bytes are synced; only its *name* stays volatile (the
  // pending kCreate) until the parent directory is synced.
  for (auto& [p, size] : durable_sizes_) {
    if (p == path) {
      size = content.size();
      return true;
    }
  }
  return true;
}

bool FaultyFileSystem::Rename(const std::string& from, const std::string& to,
                              std::string* error) {
  if (fail::ShouldFail("io.rename.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.rename.error") + ": " + from);
    return false;
  }
  if (!base_->Rename(from, to, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  RecordPending({PendingOp::Kind::kRename, from, to});
  return true;
}

bool FaultyFileSystem::SyncDir(const std::string& path, std::string* error) {
  if (fail::ShouldFail("io.syncdir.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.syncdir.error") + ": " + path);
    return false;
  }
  if (fail::ShouldFail("io.syncdir.lie")) {
    // Success without durability: every pending create/rename/remove under
    // this directory stays rollback-able by SimulateCrash.
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sync_lies;
    return true;
  }
  if (!base_->SyncDir(path, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, PendingOp>> kept;
  kept.reserve(pending_.size());
  for (auto& [parent, op] : pending_) {
    if (parent != path) {
      kept.emplace_back(parent, std::move(op));
      continue;
    }
    // Finalize: a staged removal's bytes can now really go away.
    if (op.kind == PendingOp::Kind::kRemove) {
      std::string ignored;
      base_->RemoveAll(op.b, &ignored);
    }
  }
  pending_ = std::move(kept);
  return true;
}

bool FaultyFileSystem::CreateDirs(const std::string& path,
                                  std::string* error) {
  if (fail::ShouldFail("io.create_dirs.error")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.injected_errors;
    SetError(error, InjectedError("io.create_dirs.error") + ": " + path);
    return false;
  }
  bool existed = base_->Exists(path);
  if (!base_->CreateDirs(path, error)) return false;
  if (!existed) {
    std::lock_guard<std::mutex> lock(mu_);
    RecordPending({PendingOp::Kind::kCreate, path, ""});
  }
  return true;
}

bool FaultyFileSystem::RemoveAll(const std::string& path, std::string* error) {
  if (!base_->Exists(path)) return true;
  // Stage instead of deleting: the removal is only durable once the parent
  // directory is synced, so a crash before that must resurrect the bytes.
  std::string stage;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stage = path + ".crashsim-" + std::to_string(++stage_counter_);
  }
  if (!base_->Rename(path, stage, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  RecordPending({PendingOp::Kind::kRemove, path, stage});
  return true;
}

bool FaultyFileSystem::Exists(const std::string& path) {
  return base_->Exists(path);
}

std::vector<std::string> FaultyFileSystem::ListDir(const std::string& path) {
  std::vector<std::string> names = base_->ListDir(path);
  // Staged removals are invisible: as far as callers can tell, the entry
  // was deleted.
  names.erase(std::remove_if(names.begin(), names.end(),
                             [](const std::string& name) {
                               return name.find(".crashsim-") !=
                                      std::string::npos;
                             }),
              names.end());
  return names;
}

void FaultyFileSystem::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.crashes;
  // Roll back un-synced metadata, newest first (the order a journaling
  // filesystem would lose them in).
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    PendingOp& op = it->second;
    std::string ignored;
    switch (op.kind) {
      case PendingOp::Kind::kCreate:
        base_->RemoveAll(op.a, &ignored);
        break;
      case PendingOp::Kind::kRename:
        base_->Rename(op.b, op.a, &ignored);
        break;
      case PendingOp::Kind::kRemove:
        base_->Rename(op.b, op.a, &ignored);
        break;
    }
    ++counters_.rolled_back_ops;
  }
  pending_.clear();
  // Truncate surviving append files back to their durable watermark.
  for (const auto& [path, durable] : durable_sizes_) {
    if (!base_->Exists(path)) continue;
    std::string content, ignored;
    if (base_->Read(path, &content, &ignored) != ReadStatus::kOk) continue;
    if (content.size() <= durable) continue;
    base_->WriteFileDurable(path, content.substr(0, durable), &ignored);
  }
  durable_sizes_.clear();
}

void FaultyFileSystem::ArmBitFlip(const std::string& path_substr,
                                  uint64_t bit_index) {
  std::lock_guard<std::mutex> lock(mu_);
  bit_flips_.push_back({path_substr, bit_index});
}

void FaultyFileSystem::ClearBitFlips() {
  std::lock_guard<std::mutex> lock(mu_);
  bit_flips_.clear();
}

bool FaultyFileSystem::CorruptOnDisk(const std::string& path,
                                     uint64_t bit_index, std::string* error) {
  std::string content;
  if (base_->Read(path, &content, error) != ReadStatus::kOk) return false;
  if (content.empty()) {
    SetError(error, "cannot corrupt empty file: " + path);
    return false;
  }
  uint64_t bit = bit_index % (content.size() * 8);
  content[bit / 8] = static_cast<char>(
      static_cast<unsigned char>(content[bit / 8]) ^ (1u << (bit % 8)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.bit_flips;
  }
  return base_->WriteFileDurable(path, content, error);
}

FaultyFileSystem::Counters FaultyFileSystem::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace io
}  // namespace midas
