#include "midas/common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "midas/obs/metrics.h"

namespace midas {
namespace fail {
namespace {

struct Failpoint {
  int skip = 0;    // hits to ignore before firing
  int fires = 1;   // remaining fires; < 0 = unlimited
  int hits = 0;    // total evaluations while armed
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Failpoint, std::less<>> points;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: sites may hit at exit
  return *r;
}

// Unarmed fast path: sites pay one relaxed load when nothing is armed.
std::atomic<int> g_armed_count{0};

}  // namespace

void Arm(const std::string& name, int skip, int fires) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  bool fresh = reg.points.find(name) == reg.points.end();
  reg.points[name] = Failpoint{skip, fires, 0};
  if (fresh) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.points.erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  g_armed_count.fetch_sub(static_cast<int>(reg.points.size()),
                          std::memory_order_relaxed);
  reg.points.clear();
}

int HitCount(const std::string& name) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedNames() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.points.size());
  for (const auto& [name, fp] : reg.points) names.push_back(name);
  return names;
}

int ArmSpec(std::string_view spec) {
  // "name[:skip[:fires]]" entries separated by ';' or ','.
  int armed = 0;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t sep = rest.find_first_of(";,");
    std::string_view entry = rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view()
                                         : rest.substr(sep + 1);
    if (entry.empty()) continue;
    std::string name;
    int skip = 0;
    int fires = 1;
    size_t c1 = entry.find(':');
    if (c1 == std::string_view::npos) {
      name = std::string(entry);
    } else {
      name = std::string(entry.substr(0, c1));
      std::string nums(entry.substr(c1 + 1));
      size_t c2 = nums.find(':');
      skip = std::atoi(nums.substr(0, c2).c_str());
      if (c2 != std::string::npos) {
        fires = std::atoi(nums.substr(c2 + 1).c_str());
      }
    }
    if (!name.empty()) {
      Arm(name, skip, fires);
      ++armed;
    }
  }
  return armed;
}

void LoadFromEnv() {
  const char* spec = std::getenv("MIDAS_FAILPOINTS");
  if (spec == nullptr) return;
  ArmSpec(spec);
}

bool ShouldFail(std::string_view name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return false;
  Failpoint& fp = it->second;
  int hit = fp.hits++;
  if (hit < fp.skip) return false;
  if (fp.fires == 0) return false;
  if (fp.fires > 0) --fp.fires;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Current();
  if (metrics.enabled()) {
    metrics.GetCounter("midas_failpoint_fires_total")->Increment();
  }
  return true;
}

}  // namespace fail
}  // namespace midas
