#ifndef MIDAS_COMMON_STATS_H_
#define MIDAS_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace midas {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for vectors with fewer than 2 elements.
double Stddev(const std::vector<double>& v);

/// Euclidean (L2) distance between two equal-length vectors.
/// Shorter vector is implicitly zero-padded.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Normalizes v in place so its entries sum to 1 (no-op if the sum is 0).
void NormalizeToDistribution(std::vector<double>& v);

/// Result of a two-sample Kolmogorov-Smirnov test.
struct KsResult {
  double statistic = 0.0;  ///< sup |F1(x) - F2(x)|
  double p_value = 1.0;    ///< asymptotic two-sided p-value
};

/// Two-sample Kolmogorov-Smirnov test on real-valued samples.
///
/// MIDAS uses this to check that a pattern swap does not significantly change
/// the pattern-size distribution of the canned pattern set (Section 6.2).
KsResult KsTest(const std::vector<double>& sample1,
                const std::vector<double>& sample2);

/// Convenience: true when the two samples are NOT significantly different at
/// the given significance level (i.e., distributions deemed similar).
bool KsSimilar(const std::vector<double>& sample1,
               const std::vector<double>& sample2, double alpha = 0.05);

}  // namespace midas

#endif  // MIDAS_COMMON_STATS_H_
