#ifndef MIDAS_COMMON_SPARSE_MATRIX_H_
#define MIDAS_COMMON_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace midas {

/// Sparse non-negative integer matrix with stable row/column keys.
///
/// Backs the TG-/TP-matrices of the FCT-Index and the EG-/EP-matrices of the
/// IFE-Index (Definitions 5.1 and 5.2). Rows are features (FCTs, frequent or
/// infrequent edges) and columns are data graphs or canned patterns; entries
/// store embedding counts. Only non-zero entries are stored, matching the
/// paper's (row, column, value) triplet representation, and rows/columns can
/// be removed as features, graphs and patterns come and go.
class SparseMatrix {
 public:
  using Key = uint32_t;

  /// Sets entry (row, col); value 0 erases the entry.
  void Set(Key row, Key col, int32_t value);
  /// Adds delta to entry (row, col); erases the entry if it reaches 0.
  void Add(Key row, Key col, int32_t delta);
  int32_t Get(Key row, Key col) const;

  void RemoveRow(Key row);
  void RemoveColumn(Key col);

  bool HasRow(Key row) const { return rows_.count(row) > 0; }

  /// Non-zero entries of one row as (col, value) pairs (unordered).
  std::vector<std::pair<Key, int32_t>> Row(Key row) const;

  /// Keys of all rows with at least one non-zero entry.
  std::vector<Key> RowKeys() const;

  /// Number of non-zero entries.
  size_t NonZeroCount() const;

  /// Approximate heap footprint in bytes (for the Exp-2 memory report).
  size_t MemoryBytes() const;

 private:
  std::unordered_map<Key, std::unordered_map<Key, int32_t>> rows_;
};

}  // namespace midas

#endif  // MIDAS_COMMON_SPARSE_MATRIX_H_
