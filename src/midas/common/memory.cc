#include "midas/common/memory.h"

#include <cstdio>

#include "midas/obs/metrics.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace midas {

void MemoryBudget::Register(const std::string& name, Sampler sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, s] : samplers_) {
    if (n == name) {
      s = std::move(sampler);
      return;
    }
  }
  samplers_.emplace_back(name, std::move(sampler));
}

void MemoryBudget::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = samplers_.begin(); it != samplers_.end(); ++it) {
    if (it->first == name) {
      samplers_.erase(it);
      return;
    }
  }
}

MemoryBudget::Sample MemoryBudget::SampleNow() {
  Sample sample;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sample.components.reserve(samplers_.size());
    for (const auto& [name, sampler] : samplers_) {
      Component c;
      c.name = name;
      c.bytes = sampler ? sampler() : 0;
      sample.total_bytes += c.bytes;
      sample.components.push_back(std::move(c));
    }
  }
  sample.synthetic_bytes = synthetic_bytes_.load(std::memory_order_relaxed);
  sample.total_bytes += sample.synthetic_bytes;
  if (sample_rss_) sample.rss_bytes = CurrentRssBytes();

  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (budget > 0) {
    sample.pressure =
        static_cast<double>(sample.total_bytes) / static_cast<double>(budget);
  }
  last_total_.store(sample.total_bytes, std::memory_order_relaxed);
  last_pressure_.store(sample.pressure, std::memory_order_relaxed);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    for (const Component& c : sample.components) {
      reg.GetGauge("midas_memory_" + c.name + "_bytes")
          ->Set(static_cast<double>(c.bytes));
    }
    reg.GetGauge("midas_memory_tracked_bytes")
        ->Set(static_cast<double>(sample.total_bytes));
    reg.GetGauge("midas_memory_budget_bytes")
        ->Set(static_cast<double>(budget));
    reg.GetGauge("midas_memory_pressure")->Set(sample.pressure);
    if (sample.synthetic_bytes > 0) {
      reg.GetGauge("midas_memory_synthetic_bytes")
          ->Set(static_cast<double>(sample.synthetic_bytes));
    }
    if (sample.rss_bytes > 0) {
      reg.GetGauge("midas_memory_rss_bytes")
          ->Set(static_cast<double>(sample.rss_bytes));
    }
  }
  return sample;
}

size_t MemoryBudget::CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long rss_pages = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace midas
