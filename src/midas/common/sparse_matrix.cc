#include "midas/common/sparse_matrix.h"

namespace midas {

void SparseMatrix::Set(Key row, Key col, int32_t value) {
  if (value == 0) {
    auto it = rows_.find(row);
    if (it != rows_.end()) {
      it->second.erase(col);
      if (it->second.empty()) rows_.erase(it);
    }
    return;
  }
  rows_[row][col] = value;
}

void SparseMatrix::Add(Key row, Key col, int32_t delta) {
  if (delta == 0) return;
  int32_t next = Get(row, col) + delta;
  Set(row, col, next);
}

int32_t SparseMatrix::Get(Key row, Key col) const {
  auto it = rows_.find(row);
  if (it == rows_.end()) return 0;
  auto jt = it->second.find(col);
  return jt == it->second.end() ? 0 : jt->second;
}

void SparseMatrix::RemoveRow(Key row) { rows_.erase(row); }

void SparseMatrix::RemoveColumn(Key col) {
  for (auto it = rows_.begin(); it != rows_.end();) {
    it->second.erase(col);
    if (it->second.empty()) {
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<SparseMatrix::Key, int32_t>> SparseMatrix::Row(
    Key row) const {
  std::vector<std::pair<Key, int32_t>> out;
  auto it = rows_.find(row);
  if (it == rows_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [col, value] : it->second) out.emplace_back(col, value);
  return out;
}

std::vector<SparseMatrix::Key> SparseMatrix::RowKeys() const {
  std::vector<Key> keys;
  keys.reserve(rows_.size());
  for (const auto& [row, cols] : rows_) keys.push_back(row);
  return keys;
}

size_t SparseMatrix::NonZeroCount() const {
  size_t n = 0;
  for (const auto& [row, cols] : rows_) n += cols.size();
  return n;
}

size_t SparseMatrix::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [row, cols] : rows_) {
    bytes += sizeof(row) + sizeof(cols);
    bytes += cols.size() * (sizeof(Key) + sizeof(int32_t) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace midas
