#include "midas/common/parallel.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/obs/trace.h"

namespace midas {

namespace {

/// Set while a thread is inside TaskPool::WorkerLoop; nested ParallelFor
/// detects it and runs inline instead of blocking a worker on a sub-batch.
thread_local TaskPool* t_worker_pool = nullptr;

/// Live `midas_parallel_queue_depth`: published at every deal and every
/// chunk pop, so a /metrics scrape mid-batch sees the actual backlog
/// (batch-end-only flushing always read 0). Chunks are coarse (~4 per
/// executor per batch), so one registry lookup per pop is cold.
void PublishQueueDepth(uint64_t depth) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (!reg.enabled()) return;
  reg.GetGauge("midas_parallel_queue_depth")->Set(static_cast<double>(depth));
}

}  // namespace

uint64_t SplitSeed(uint64_t base, uint64_t index) {
  // splitmix64 finalizer over base advanced by the golden-ratio increment;
  // adjacent indices map to statistically independent streams.
  uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct TaskPool::Batch {
  const std::function<void(size_t)>* body = nullptr;
  ExecBudget* budget = nullptr;
  std::string span_prefix;
  /// Submitter's causal trace, inherited by whichever thread runs a chunk —
  /// kernel work is attributed to the owning batch even when stolen. The
  /// submitter outlives the batch (it blocks on done_cv), so the raw
  /// pointer is safe.
  obs::TraceContext* trace = nullptr;

  std::atomic<size_t> remaining{0};    ///< indices not yet finished/skipped
  std::atomic<bool> cancelled{false};  ///< a task threw: skip remaining work

  std::mutex err_mu;
  std::exception_ptr error;

  std::mutex done_mu;
  std::condition_variable done_cv;
};

TaskPool::TaskPool(int num_threads) {
  int spawn = std::max(0, num_threads - 1);
  queues_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool TaskPool::OnWorkerThread() { return t_worker_pool != nullptr; }

void TaskPool::SerialFor(size_t n, const std::function<void(size_t)>& body,
                         ExecBudget* budget) {
  for (size_t i = 0; i < n; ++i) {
    if (budget != nullptr && budget->exhausted()) break;
    body(i);
  }
}

void TaskPool::RunChunk(const Chunk& c) {
  Batch* b = c.batch;
  const bool on_worker = t_worker_pool != nullptr;
  std::string prev_prefix;
  obs::TraceContext* prev_trace = nullptr;
  if (on_worker) {
    prev_prefix = obs::SpanProfiler::SetInheritedPrefix(b->span_prefix);
    prev_trace = obs::TraceContext::Exchange(b->trace);
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t i = c.begin; i < c.end; ++i) {
    if (b->cancelled.load(std::memory_order_relaxed)) break;
    if (b->budget != nullptr && b->budget->exhausted()) break;
    try {
      (*b->body)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(b->err_mu);
        if (!b->error) b->error = std::current_exception();
      }
      b->cancelled.store(true, std::memory_order_relaxed);
      break;
    }
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  busy_us_.fetch_add(static_cast<uint64_t>(us), std::memory_order_relaxed);
  tasks_.fetch_add(1, std::memory_order_relaxed);
  if (on_worker) {
    obs::SpanProfiler::SetInheritedPrefix(std::move(prev_prefix));
    obs::TraceContext::Exchange(prev_trace);
  }
  size_t span = c.end - c.begin;
  if (b->remaining.fetch_sub(span, std::memory_order_acq_rel) == span) {
    // Last chunk of the batch: wake the submitter. Taking done_mu between
    // its predicate check and its wait closes the lost-wakeup window.
    { std::lock_guard<std::mutex> lock(b->done_mu); }
    b->done_cv.notify_all();
  }
}

bool TaskPool::TryRunOneChunk(size_t preferred, bool count_steal) {
  size_t nq = queues_.size();
  if (preferred < nq) {
    WorkerQueue& wq = *queues_[preferred];
    std::unique_lock<std::mutex> lock(wq.mu);
    if (!wq.chunks.empty()) {
      Chunk c = wq.chunks.back();  // owner pops LIFO (cache-warm end)
      wq.chunks.pop_back();
      lock.unlock();
      PublishQueueDepth(queued_chunks_.fetch_sub(1,
                                                 std::memory_order_relaxed) -
                        1);
      RunChunk(c);
      return true;
    }
  }
  for (size_t off = 0; off < nq; ++off) {
    size_t qi = preferred < nq ? (preferred + 1 + off) % nq : off;
    if (qi == preferred) continue;
    WorkerQueue& wq = *queues_[qi];
    std::unique_lock<std::mutex> lock(wq.mu);
    if (!wq.chunks.empty()) {
      Chunk c = wq.chunks.front();  // thieves pop FIFO (opposite end)
      wq.chunks.pop_front();
      lock.unlock();
      PublishQueueDepth(queued_chunks_.fetch_sub(1,
                                                 std::memory_order_relaxed) -
                        1);
      if (count_steal) steals_.fetch_add(1, std::memory_order_relaxed);
      RunChunk(c);
      return true;
    }
  }
  return false;
}

void TaskPool::WorkerLoop(size_t self) {
  t_worker_pool = this;
  for (;;) {
    if (TryRunOneChunk(self, /*count_steal=*/true)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_ || queued_chunks_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) return;  // ~TaskPool only runs with no batch in flight
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                           ExecBudget* budget) {
  if (n == 0) return;
  if (serial() || OnWorkerThread() || n == 1) {
    SerialFor(n, body, budget);
    return;
  }

  Batch batch;
  batch.body = &body;
  batch.budget = budget;
  batch.remaining.store(n, std::memory_order_relaxed);
  batch.span_prefix = obs::SpanProfiler::CurrentPath();
  batch.trace = obs::TraceContext::Current();

  // ~4 chunks per executor balances steal traffic against load balance.
  size_t target_chunks = static_cast<size_t>(num_threads()) * 4;
  size_t chunk = std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  size_t dealt = 0;
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  for (size_t begin = 0; begin < n; begin += chunk) {
    Chunk c{&batch, begin, std::min(begin + chunk, n)};
    WorkerQueue& wq = *queues_[q];
    {
      std::lock_guard<std::mutex> lock(wq.mu);
      wq.chunks.push_back(c);
    }
    q = (q + 1) % queues_.size();
    ++dealt;
  }
  queued_chunks_.fetch_add(dealt, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetGauge("midas_parallel_queue_depth")
        ->Set(static_cast<double>(
            queued_chunks_.load(std::memory_order_relaxed)));
  }

  // The submitter works too: steal from the front like any thief.
  while (TryRunOneChunk(queues_.size(), /*count_steal=*/false)) {
  }
  {
    std::unique_lock<std::mutex> lock(batch.done_mu);
    batch.done_cv.wait(lock, [&batch] {
      return batch.remaining.load(std::memory_order_acquire) == 0;
    });
  }

  if (reg.enabled()) {
    std::lock_guard<std::mutex> lock(flush_mu_);
    uint64_t tasks = tasks_.load(std::memory_order_relaxed);
    uint64_t steals = steals_.load(std::memory_order_relaxed);
    uint64_t busy_us = busy_us_.load(std::memory_order_relaxed);
    if (tasks > tasks_flushed_) {
      reg.GetCounter("midas_parallel_tasks_total")
          ->Increment(tasks - tasks_flushed_);
      tasks_flushed_ = tasks;
    }
    if (steals > steals_flushed_) {
      reg.GetCounter("midas_parallel_steal_total")
          ->Increment(steals - steals_flushed_);
      steals_flushed_ = steals;
    }
    uint64_t delta_ms = (busy_us - busy_us_flushed_) / 1000;
    if (delta_ms > 0) {
      reg.GetCounter("midas_parallel_worker_busy_ms")->Increment(delta_ms);
      busy_us_flushed_ += delta_ms * 1000;
    }
    reg.GetGauge("midas_parallel_queue_depth")
        ->Set(static_cast<double>(
            queued_chunks_.load(std::memory_order_relaxed)));
  }

  if (batch.error) std::rethrow_exception(batch.error);
}

void ParallelFor(TaskPool* pool, size_t n,
                 const std::function<void(size_t)>& body, ExecBudget* budget) {
  if (pool == nullptr || pool->serial() || TaskPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) {
      if (budget != nullptr && budget->exhausted()) break;
      body(i);
    }
    return;
  }
  pool->ParallelFor(n, body, budget);
}

}  // namespace midas
