#include "midas/common/budget.h"

#include "midas/obs/metrics.h"

namespace midas {

void ExecBudget::Reset(Deadline deadline, uint64_t max_steps) {
  deadline_ = deadline;
  max_steps_ = max_steps;
  steps_used_ = 0;
  next_deadline_check_ = kDeadlineStride;
  unlimited_ = deadline.infinite() && max_steps == 0;
  exhausted_ = false;
  cause_ = Cause::kNone;
}

void ExecBudget::ResetUnlimited() { Reset(Deadline::Infinite(), 0); }

void ExecBudget::Exhaust(Cause cause) {
  // Several pool workers can trip the same budget concurrently; only the
  // first exchange records the cause and the metric.
  if (exhausted_.exchange(true, std::memory_order_relaxed)) return;
  cause_ = cause;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter("midas_budget_exhausted_total")->Increment();
    if (cause == Cause::kDeadline) {
      reg.GetCounter("midas_budget_exhausted_deadline_total")->Increment();
    } else {
      reg.GetCounter("midas_budget_exhausted_steps_total")->Increment();
    }
  }
}

std::string_view ExecBudget::CauseName(Cause cause) {
  switch (cause) {
    case Cause::kSteps:
      return "steps";
    case Cause::kDeadline:
      return "deadline";
    case Cause::kNone:
      break;
  }
  return "none";
}

}  // namespace midas
