#include "midas/common/chaos.h"

#include <algorithm>
#include <sstream>

#include "midas/common/rng.h"

namespace midas {
namespace chaos {

const char* ChaosEventKindName(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kArmFailpoint:
      return "arm_failpoint";
    case ChaosEvent::Kind::kLoadBurst:
      return "load_burst";
    case ChaosEvent::Kind::kMemoryPressure:
      return "memory_pressure";
    case ChaosEvent::Kind::kClearPressure:
      return "clear_pressure";
    case ChaosEvent::Kind::kQuiesce:
      return "quiesce";
  }
  return "unknown";
}

std::string ChaosEvent::Describe() const {
  std::ostringstream out;
  out << "step=" << step << " " << ChaosEventKindName(kind);
  switch (kind) {
    case Kind::kArmFailpoint:
      out << ":" << failpoint_spec;
      break;
    case Kind::kLoadBurst:
      out << ":" << burst_batches;
      break;
    case Kind::kMemoryPressure:
      out << ":" << pressure_bytes;
      break;
    case Kind::kClearPressure:
    case Kind::kQuiesce:
      break;
  }
  return out.str();
}

ChaosSchedule::ChaosSchedule(const Config& config) : config_(config) {
  // One Rng, one fixed draw order: the schedule is a pure function of the
  // seed. Draws happen for every step in the same sequence regardless of
  // which events materialize, so tweaking one probability does not reshuffle
  // the events behind it.
  Rng rng(config_.seed);
  bool pressure_live = false;
  for (uint64_t step = 0; step < config_.steps; ++step) {
    const bool burst = rng.Bernoulli(config_.burst_prob);
    const int burst_n =
        1 + static_cast<int>(rng.UniformInt(
                0, std::max(0, config_.max_burst_batches - 1)));
    const bool pressure = rng.Bernoulli(config_.pressure_prob);
    const double pressure_frac = rng.UniformReal();
    const bool failpoint = rng.Bernoulli(config_.failpoint_prob);
    const size_t site_index = config_.failpoint_sites.empty()
                                  ? 0
                                  : static_cast<size_t>(rng.UniformInt(
                                        0, static_cast<int64_t>(
                                               config_.failpoint_sites.size()) -
                                               1));
    const int fires = 1 + static_cast<int>(rng.UniformInt(0, 2));
    const int skip = static_cast<int>(rng.UniformInt(0, 3));

    if (burst && burst_n > 0) {
      ChaosEvent e;
      e.kind = ChaosEvent::Kind::kLoadBurst;
      e.step = step;
      e.burst_batches = burst_n;
      events_.push_back(std::move(e));
    }
    if (pressure) {
      ChaosEvent e;
      e.step = step;
      if (pressure_live && pressure_frac < 0.4) {
        e.kind = ChaosEvent::Kind::kClearPressure;
        pressure_live = false;
      } else {
        e.kind = ChaosEvent::Kind::kMemoryPressure;
        e.pressure_bytes = static_cast<size_t>(
            pressure_frac * static_cast<double>(config_.max_pressure_bytes));
        pressure_live = true;
      }
      events_.push_back(std::move(e));
    }
    if (failpoint && !config_.failpoint_sites.empty()) {
      ChaosEvent e;
      e.kind = ChaosEvent::Kind::kArmFailpoint;
      e.step = step;
      std::ostringstream spec;
      spec << config_.failpoint_sites[site_index] << ":" << skip << ":"
           << fires;
      e.failpoint_spec = spec.str();
      events_.push_back(std::move(e));
    }
  }
  // Every schedule ends calm: clear pressure and drain, so a drill that ran
  // the full schedule hands back a host that can prove it recovered.
  ChaosEvent clear;
  clear.kind = ChaosEvent::Kind::kClearPressure;
  clear.step = config_.steps;
  events_.push_back(clear);
  ChaosEvent quiesce;
  quiesce.kind = ChaosEvent::Kind::kQuiesce;
  quiesce.step = config_.steps;
  events_.push_back(quiesce);
}

std::vector<ChaosEvent> ChaosSchedule::EventsAt(uint64_t step) const {
  std::vector<ChaosEvent> out;
  for (const ChaosEvent& e : events_) {
    if (e.step == step) out.push_back(e);
  }
  return out;
}

std::string ChaosSchedule::Describe() const {
  std::ostringstream out;
  out << "chaos schedule seed=" << config_.seed << " steps=" << config_.steps
      << " events=" << events_.size() << "\n";
  for (const ChaosEvent& e : events_) out << "  " << e.Describe() << "\n";
  return out.str();
}

}  // namespace chaos
}  // namespace midas
