#ifndef MIDAS_COMMON_BUDGET_H_
#define MIDAS_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>

namespace midas {

/// Wall-clock deadline on the steady clock. Default-constructed deadlines
/// are infinite (never expire); AfterMs(x) expires x milliseconds from now.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMs(double ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool infinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }
  /// Milliseconds until expiry (negative once expired, +inf when infinite).
  double RemainingMs() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point at_{};
  bool infinite_ = true;
};

/// Cooperative execution budget checked inside recursion hot loops
/// (VF2 node expansion, GED branch & bound, tree-miner extensions, swap
/// candidate evaluation). A budget couples
///   - a step cap (deterministic, platform-independent), and
///   - a wall-clock Deadline (checked every kDeadlineStride charged steps so
///     the hot path stays clock-free).
///
/// Exhaustion latches: once a budget trips, every later Charge() returns
/// false until Reset*(), so a kernel deep in recursion unwinds promptly and
/// sibling kernels sharing the budget stop too. The first trip increments
/// `midas_budget_exhausted_total` (by cause) on the current MetricsRegistry —
/// every degradation is visible, never silent.
///
/// Kernels accept `ExecBudget*` with nullptr meaning unlimited; use
/// BudgetCharge() to keep call sites branch-light.
class ExecBudget {
 public:
  enum class Cause { kNone, kSteps, kDeadline };

  /// Deadline checks piggyback on step charges at this stride; one step is
  /// one VF2/GED search node or equivalent (~sub-microsecond), so the stride
  /// bounds deadline overshoot well below a millisecond.
  static constexpr uint64_t kDeadlineStride = 1024;

  /// Unlimited budget.
  ExecBudget() = default;
  /// `max_steps` = 0 means no step cap.
  ExecBudget(Deadline deadline, uint64_t max_steps) {
    Reset(deadline, max_steps);
  }

  static ExecBudget Unlimited() { return ExecBudget(); }
  static ExecBudget StepLimit(uint64_t max_steps) {
    return ExecBudget(Deadline::Infinite(), max_steps);
  }
  static ExecBudget TimeLimitMs(double ms) {
    return ExecBudget(Deadline::AfterMs(ms), 0);
  }

  /// Re-arms the budget in place (the engine reuses one stable instance per
  /// maintenance round so long-lived closures can capture its address).
  void Reset(Deadline deadline, uint64_t max_steps);
  void ResetUnlimited();

  /// Hot-path check: charges `n` steps of work. Returns true while within
  /// budget; false once exhausted (latched). Thread-safe: one round budget
  /// is shared by every TaskPool worker, so the mutable state is relaxed
  /// atomics — contention is a fetch_add, and the exhaustion latch makes
  /// the outcome order-independent (any worker tripping stops all of them).
  bool Charge(uint64_t n = 1) {
    if (unlimited_) return true;
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    uint64_t used = steps_used_.fetch_add(n, std::memory_order_relaxed) + n;
    if (max_steps_ != 0 && used > max_steps_) {
      Exhaust(Cause::kSteps);
      return false;
    }
    if (used >= next_deadline_check_.load(std::memory_order_relaxed)) {
      // Racy advance is benign: at worst two threads both read the clock.
      next_deadline_check_.store(used + kDeadlineStride,
                                 std::memory_order_relaxed);
      if (deadline_.Expired()) {
        Exhaust(Cause::kDeadline);
        return false;
      }
    }
    return true;
  }

  /// True once the budget tripped (or `CheckNow` found the deadline past).
  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// Non-charging probe: also notices an expired deadline between charges.
  bool ExhaustedNow() {
    if (!unlimited_ && !exhausted() && deadline_.Expired()) {
      Exhaust(Cause::kDeadline);
    }
    return exhausted();
  }

  Cause cause() const { return cause_.load(std::memory_order_relaxed); }
  uint64_t steps_used() const {
    return steps_used_.load(std::memory_order_relaxed);
  }
  const Deadline& deadline() const { return deadline_; }

  /// "none", "steps" or "deadline" — the event-log / error-message spelling.
  static std::string_view CauseName(Cause cause);

 private:
  void Exhaust(Cause cause);  // latches + metric, in budget.cc

  // deadline_/max_steps_/unlimited_ change only in Reset*, which runs with
  // no kernel in flight (pool batches are bracketed by the submitting
  // thread, whose queue handoff orders the plain fields). The fields a
  // mid-batch Charge mutates are atomics.
  Deadline deadline_;
  uint64_t max_steps_ = 0;
  std::atomic<uint64_t> steps_used_{0};
  std::atomic<uint64_t> next_deadline_check_{kDeadlineStride};
  bool unlimited_ = true;
  std::atomic<bool> exhausted_{false};
  std::atomic<Cause> cause_{Cause::kNone};
};

/// nullptr-tolerant charge helper for kernels taking `ExecBudget* budget`.
inline bool BudgetCharge(ExecBudget* budget, uint64_t n = 1) {
  return budget == nullptr || budget->Charge(n);
}

/// nullptr-tolerant exhaustion probe.
inline bool BudgetExhausted(const ExecBudget* budget) {
  return budget != nullptr && budget->exhausted();
}

}  // namespace midas

#endif  // MIDAS_COMMON_BUDGET_H_
