#ifndef MIDAS_COMMON_PARALLEL_H_
#define MIDAS_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "midas/common/budget.h"

namespace midas {

/// Deterministic seed splitting for per-task RNG sub-streams (splitmix64
/// finalizer over base ^ golden-ratio-scaled index). Both the serial and the
/// parallel evaluation of a loop derive the i-th task's Rng as
/// `Rng(SplitSeed(salt, i))`, so results are identical at any thread count.
uint64_t SplitSeed(uint64_t base, uint64_t index);

/// Fixed-size work-stealing task pool for the maintenance hot loops.
///
/// Design (docs/performance.md):
///  - `num_threads` counts the submitting thread: a pool of N spawns N-1
///    workers and the caller executes chunks too, so `TaskPool(1)` spawns
///    nothing and ParallelFor degenerates to today's serial loop — the
///    reference implementation.
///  - ParallelFor splits [0, n) into contiguous chunks, deals them
///    round-robin onto per-worker deques; owners pop from the back, thieves
///    (other workers and the caller) pop from the front. Each deque has its
///    own mutex — chunks are coarse (VF2 / GED calls), so the locks are cold
///    and the scheme is trivially TSan-clean.
///  - Determinism: work is keyed by index, results land in index-ordered
///    slots (ParallelMap), and nothing observable depends on which thread
///    ran a chunk. Call sites that need randomness derive per-task streams
///    with SplitSeed.
///  - Cooperative cancellation: every index checks the shared ExecBudget
///    (latched, thread-safe) and the batch cancellation flag, so an
///    exhausted budget — or a failpoint/exception thrown by any task — stops
///    all workers at the next per-index stride check. The first exception is
///    rethrown on the calling thread only after every worker has quiesced,
///    which is how FailpointAbort unwinds ApplyUpdate with the pool idle.
///  - Nested ParallelFor from inside a pool task runs serially inline
///    (workers never block waiting on sub-batches — no deadlock).
///  - obs integration: the submitting thread's live SpanProfiler path is
///    captured per batch and installed as the workers' inherited path
///    prefix, so spans opened inside tasks merge under the spawning span in
///    ExportFolded. Pool health is exported on the current MetricsRegistry:
///    `midas_parallel_tasks_total` (chunks executed),
///    `midas_parallel_steal_total` (cross-deque pops),
///    `midas_parallel_queue_depth` (gauge, queued chunks) and
///    `midas_parallel_worker_busy_ms` (execution time, all executors).
class TaskPool {
 public:
  /// `num_threads` <= 1 creates a serial pool (no threads spawned);
  /// 0 is treated as 1 — callers resolve hardware_concurrency themselves
  /// (see MidasConfig::num_threads).
  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total executor count, including the submitting thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }
  /// True when no worker threads exist (ParallelFor loops inline).
  bool serial() const { return workers_.empty(); }

  /// Runs body(i) for every i in [0, n); blocks until all of them finished
  /// (or were skipped by cancellation). When `budget` is non-null, every
  /// index first probes it and exhaustion skips the remaining work — same
  /// under-count-only degradation as the serial loops. The first exception
  /// thrown by any task is rethrown here after the batch has quiesced.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   ExecBudget* budget = nullptr);

  /// ParallelFor with index-ordered result collection: out[i] = fn(i).
  /// Indices skipped by cancellation keep their default-constructed value.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn, ExecBudget* budget = nullptr) {
    std::vector<T> out(n);
    ParallelFor(
        n, [&](size_t i) { out[i] = fn(i); }, budget);
    return out;
  }

  /// Lifetime totals (also exported as metrics; exposed for tests).
  uint64_t tasks_executed() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// True when the calling thread is one of *any* TaskPool's workers —
  /// nested ParallelFor uses this to fall back to the inline serial loop.
  static bool OnWorkerThread();

 private:
  struct Batch;
  struct Chunk {
    Batch* batch;
    size_t begin;
    size_t end;
  };
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void WorkerLoop(size_t self);
  bool TryRunOneChunk(size_t preferred, bool count_steal_from_others);
  void RunChunk(const Chunk& c);
  void SerialFor(size_t n, const std::function<void(size_t)>& body,
                 ExecBudget* budget);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::atomic<size_t> queued_chunks_{0};

  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> busy_us_{0};  // total execution time
  // Watermarks of what already reached the metrics counters (under
  // flush_mu_, flushed once per batch — never from the hot path).
  uint64_t tasks_flushed_ = 0;
  uint64_t steals_flushed_ = 0;
  uint64_t busy_us_flushed_ = 0;
  std::mutex flush_mu_;

  std::atomic<size_t> next_queue_{0};  // round-robin dealing cursor
};

/// nullptr-tolerant helper: serial loop when `pool` is null, serial, or the
/// caller is already a pool worker (nested parallelism).
void ParallelFor(TaskPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 ExecBudget* budget = nullptr);

}  // namespace midas

#endif  // MIDAS_COMMON_PARALLEL_H_
