#ifndef MIDAS_COMMON_RNG_H_
#define MIDAS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace midas {

/// Deterministic random number generator used across the library.
///
/// All randomized components (dataset generation, k-means++ seeding, random
/// walks, MCCS restarts) take an explicit `Rng&` so that every experiment is
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Index drawn proportionally to the non-negative weights.
  /// Returns -1 if all weights are zero or the vector is empty.
  int PickWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel-safe sub-streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace midas

#endif  // MIDAS_COMMON_RNG_H_
