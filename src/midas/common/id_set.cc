#include "midas/common/id_set.h"

#include <algorithm>

namespace midas {

IdSet::IdSet(std::initializer_list<uint32_t> ids) : ids_(ids) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IdSet::IdSet(std::vector<uint32_t> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool IdSet::Insert(uint32_t id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return false;
  ids_.insert(it, id);
  return true;
}

bool IdSet::Erase(uint32_t id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

bool IdSet::Contains(uint32_t id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

void IdSet::UnionWith(const IdSet& other) {
  std::vector<uint32_t> merged;
  merged.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(merged));
  ids_ = std::move(merged);
}

void IdSet::DifferenceWith(const IdSet& other) {
  std::vector<uint32_t> out;
  out.reserve(ids_.size());
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out));
  ids_ = std::move(out);
}

size_t IdSet::IntersectionSize(const IdSet& other) const {
  size_t count = 0;
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

size_t IdSet::UnionSize(const IdSet& other) const {
  return ids_.size() + other.ids_.size() - IntersectionSize(other);
}

size_t IdSet::DifferenceSize(const IdSet& other) const {
  return ids_.size() - IntersectionSize(other);
}

IdSet IdSet::Union(const IdSet& a, const IdSet& b) {
  IdSet out = a;
  out.UnionWith(b);
  return out;
}

IdSet IdSet::Intersection(const IdSet& a, const IdSet& b) {
  IdSet out;
  std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                        b.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Difference(const IdSet& a, const IdSet& b) {
  IdSet out = a;
  out.DifferenceWith(b);
  return out;
}

}  // namespace midas
