#ifndef MIDAS_COMMON_MEMORY_H_
#define MIDAS_COMMON_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace midas {

/// Byte-budget tracker behind the serving host's memory watchdog.
///
/// Components (GraphDatabase, ComputeCache, the update queue, the flight
/// recorder, ...) register named samplers — cheap callbacks returning their
/// current approximate footprint. SampleNow() polls every sampler, exports
/// one `midas_memory_<component>_bytes` gauge per component plus the
/// `midas_memory_tracked_bytes` total, and reports the pressure fraction
/// (total / budget) that drives the degradation ladder.
///
/// Determinism: samplers measure tracked structures, never the allocator, so
/// a pressure reading is a pure function of engine state — which is what
/// makes chaos-scheduled watchdog drills replayable. SetSyntheticBytes() is
/// the chaos hook: a scripted pressure source accounted like any component,
/// so a drill can push the watchdog over any threshold without allocating.
///
/// Optional RSS sampling (sample_rss) reads /proc/self/statm where
/// available; it is exported for operators (`midas_memory_rss_bytes`) but
/// deliberately kept OUT of the pressure fraction — RSS depends on allocator
/// and platform, and the ladder must transition identically across runs.
///
/// Thread safety: Register/SampleNow are mutex-guarded (watchdog cadence is
/// per-round, so the lock is cold); the synthetic source and the last sample
/// total are atomics readable from any thread (telemetry handlers).
class MemoryBudget {
 public:
  using Sampler = std::function<size_t()>;

  struct Component {
    std::string name;
    size_t bytes = 0;
  };

  struct Sample {
    size_t total_bytes = 0;      ///< tracked components + synthetic source
    size_t synthetic_bytes = 0;  ///< the chaos-injected share of the total
    size_t rss_bytes = 0;        ///< 0 unless sample_rss and /proc works
    std::vector<Component> components;
    /// total / budget; 0 when no budget is configured.
    double pressure = 0.0;
  };

  MemoryBudget() = default;
  explicit MemoryBudget(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// 0 disables the budget (pressure always 0; watchdog stays quiet).
  void set_budget_bytes(size_t bytes) {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
  }
  size_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  void set_sample_rss(bool on) { sample_rss_ = on; }

  /// Registers (or replaces) the named component's sampler.
  void Register(const std::string& name, Sampler sampler);
  /// Drops the named component (samplers capture host structures, so a host
  /// tearing down unregisters what it registered).
  void Unregister(const std::string& name);

  /// Chaos hook: a synthetic pressure source of exactly `bytes`, accounted
  /// into the tracked total like any component. 0 clears it.
  void SetSyntheticBytes(size_t bytes) {
    synthetic_bytes_.store(bytes, std::memory_order_relaxed);
  }
  size_t synthetic_bytes() const {
    return synthetic_bytes_.load(std::memory_order_relaxed);
  }

  /// Polls every sampler, updates the gauges and returns the reading.
  Sample SampleNow();

  /// Total of the most recent SampleNow (readable from any thread).
  size_t last_total_bytes() const {
    return last_total_.load(std::memory_order_relaxed);
  }
  /// Pressure of the most recent SampleNow.
  double last_pressure() const {
    return last_pressure_.load(std::memory_order_relaxed);
  }

  /// Resident set size from /proc/self/statm; 0 when unavailable.
  static size_t CurrentRssBytes();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Sampler>> samplers_;
  std::atomic<size_t> budget_bytes_{0};
  std::atomic<size_t> synthetic_bytes_{0};
  std::atomic<size_t> last_total_{0};
  std::atomic<double> last_pressure_{0.0};
  bool sample_rss_ = false;
};

}  // namespace midas

#endif  // MIDAS_COMMON_MEMORY_H_
