#ifndef MIDAS_OBS_LINEAGE_H_
#define MIDAS_OBS_LINEAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "midas/select/pattern.h"

namespace midas {
namespace obs {

/// Per-pattern provenance: why is pattern P on the panel, what did the swap
/// that put it there trade away, and how has it scored since? The
/// `PatternLedger` records every pattern's full lifecycle — birth (initial
/// selection, swap-in, restore), per-round re-scores, and death (swap-out
/// with the displacing winner) — with the decision rationale captured at
/// the swap site itself (maintain/swap.cc), not reconstructed after the
/// fact.
///
/// Ownership and threading: the ledger is single-writer state owned by
/// `MidasEngine` and mutated only on the maintenance thread. Readers (the
/// /patternz and /lineage/<id> endpoints) get an immutable copy published
/// inside the lock-free `PanelSnapshot` — the ledger itself carries no
/// locks and is cheaply copyable (panel-sized, ring-capped).
///
/// Durability contract: events of a round are buffered (`BeginRound` …
/// `Commit`) and only applied when the round commits, mirroring the WAL's
/// batch/commit pairing. The pending buffer serializes as the `@L` journal
/// record written between `@B` and `@C`, and the full ledger rides in the
/// snapshot (`lineage.ledger`), so the ledger after crash + `RecoverEngine`
/// is bit-identical to an uninterrupted run's.

/// What created or destroyed a lineage entry.
enum class LineageEventKind : int {
  kInitial = 0,  ///< picked by the initial CATAPULT++ selection (seq 0)
  kSwapIn = 1,   ///< won a multi-scan (or random) swap against `other`
  kSwapOut = 2,  ///< displaced by `other` in a swap
  kRescore = 3,  ///< per-round metric refresh of a live pattern
  kRemoved = 4,  ///< disappeared outside a swap (panel reload/reconcile)
  kRestored = 5, ///< appeared outside a swap (restore without lineage data)
};

const char* LineageEventKindName(LineageEventKind kind);

/// The decision record captured at the swap site: every term the sw1–sw5
/// criteria weighed when `winner` displaced `loser`.
struct SwapRationale {
  double winner_score = 0.0;  ///< candidate's s'_p at decision time
  double loser_score = 0.0;   ///< displaced pattern's (worst) score
  double margin = 0.0;        ///< winner_score - loser_score
  double coverage_gain = 0.0; ///< sw1 benefit: new graphs the winner covers
  double coverage_loss = 0.0; ///< sw1 loss: loser's unique coverage
  double kappa = 0.0;         ///< κ threshold of the scan that accepted it
  double div_before = 0.0, div_after = 0.0;    ///< sw3 set diversity
  double cog_before = 0.0, cog_after = 0.0;    ///< sw4 set cognitive load
  double lcov_before = 0.0, lcov_after = 0.0;  ///< sw5 label coverage
  /// The score dimension that moved the most: "coverage", "diversity",
  /// "label_coverage", "cognitive_load" — or "random" (kRandomSwap mode).
  std::string dominant_term;
  bool random = false;  ///< true when the baseline RandomSwap decided
};

/// Deterministic classification of the winning dimension from the captured
/// terms (largest relative improvement; fixed tie-break order).
std::string DominantTerm(const SwapRationale& r);

/// One lifecycle event. Self-contained: the ledger state is exactly the
/// fold of its events, which is what makes journal replay bit-exact.
struct LineageEvent {
  LineageEventKind kind = LineageEventKind::kRescore;
  uint64_t seq = 0;       ///< round that committed the event (0 = initial)
  PatternId pattern = 0;
  PatternId other = 0;    ///< swap counterpart (loser for kSwapIn, winner
                          ///< for kSwapOut); meaningful iff has_other
  bool has_other = false;
  bool has_rationale = false;
  SwapRationale rationale;
  /// The pattern's metrics at event time.
  double scov = 0.0, lcov = 0.0, div = 0.0, cog = 0.0, score = 0.0;
  /// Flight-record trace id of the round ("" when untraced) — the
  /// cross-link from /lineage/<id> to /traces/<trace_id>.
  std::string trace_id;

  /// One-line text form (journal @L payload / lineage.ledger). Deterministic:
  /// shortest round-trip doubles, no timestamps.
  std::string Serialize() const;
  static bool Parse(std::string_view line, LineageEvent* out,
                    std::string* error);
  void ToJson(std::string* out) const;
};

/// Everything the ledger retains about one pattern id.
struct PatternLineage {
  PatternId id = 0;
  uint64_t birth_seq = 0;
  LineageEventKind birth_kind = LineageEventKind::kInitial;
  bool alive = true;
  uint64_t death_seq = 0;       ///< meaningful when !alive
  uint64_t rescores = 0;        ///< total rescore events ever applied
  uint64_t dropped_rescores = 0;///< evicted from the per-pattern ring
  /// Sum of scov over every committed round the pattern was live — the
  /// "cumulative coverage contribution" column of /patternz.
  double cumulative_scov = 0.0;
  /// Birth + ring-capped rescores + death, in application order.
  std::vector<LineageEvent> events;

  const LineageEvent* birth() const;
  const LineageEvent* latest() const;
};

struct PatternLedgerConfig {
  /// Rescore events retained per pattern; older ones are dropped (counted
  /// in dropped_rescores). Birth and death events are never dropped.
  size_t max_rescores_per_pattern = 32;
  /// Dead lineages retained; beyond this the oldest death is evicted.
  size_t max_dead_patterns = 256;
};

class PatternLedger {
 public:
  PatternLedger() = default;
  explicit PatternLedger(const PatternLedgerConfig& config)
      : config_(config) {}

  /// --- live recording (maintenance thread, commit-atomic) --------------
  /// Opens round `seq`: discards any stale pending events (a thrown round
  /// never commits its buffer) and stamps subsequent Pend* calls.
  void BeginRound(uint64_t seq);
  void PendBirth(PatternId id, LineageEventKind kind, PatternId loser,
                 bool has_loser, const SwapRationale* rationale, double scov,
                 double lcov, double div, double cog, double score);
  void PendDeath(PatternId id, PatternId winner, bool has_winner,
                 const SwapRationale* rationale, double scov, double lcov,
                 double div, double cog, double score);
  void PendRescore(PatternId id, double scov, double lcov, double div,
                   double cog, double score);
  /// Stamps every pending event with the round's flight-record trace id
  /// (recorded in the @L payload, so replayed lineage keeps its links).
  void StampTrace(const std::string& trace_hex);
  /// The @L journal payload: "next_pattern_id" + this round's events.
  std::string SerializeDelta(PatternId next_pattern_id) const;
  /// Applies the pending buffer (the round committed).
  void Commit();
  /// Drops the pending buffer (the round failed before commit).
  void Abort();
  size_t pending_size() const { return pending_.size(); }

  /// --- out-of-round recording ------------------------------------------
  /// Birth at initial selection (seq 0) — applied immediately.
  void RecordInitial(PatternId id, double scov, double lcov, double div,
                     double cog, double score);
  /// Squares the ledger with an externally installed panel (LoadPatterns,
  /// legacy restore): synthesizes kRestored births for unknown live ids and
  /// kRemoved deaths for ledger-live ids absent from the panel.
  void Reconcile(const PatternSet& panel, uint64_t seq);
  void Clear();

  /// --- durability -------------------------------------------------------
  /// Full ledger state, deterministic text (snapshot lineage.ledger).
  std::string Serialize() const;
  bool Deserialize(std::string_view text, std::string* error);
  /// Replays one round's @L payload. `next_pattern_id` (may be null)
  /// receives the id allocator position after the round.
  bool ApplyDelta(std::string_view text, PatternId* next_pattern_id,
                  std::string* error);

  /// --- introspection ----------------------------------------------------
  const PatternLineage* Find(PatternId id) const;
  const std::map<PatternId, PatternLineage>& lineages() const {
    return lineages_;
  }
  size_t live_count() const;
  uint64_t events_applied() const { return events_applied_; }
  uint64_t evicted_dead() const { return evicted_dead_; }
  /// Swap-in events committed at round `seq` (the examples' per-round
  /// rationale one-liners).
  std::vector<LineageEvent> SwapInsAt(uint64_t seq) const;

  /// /patternz body: live panel with birth round, age (in rounds, against
  /// `current_seq`), cumulative coverage contribution and birth rationale.
  std::string PanelJson(uint64_t current_seq) const;
  /// /lineage/<id> body: full birth-to-present history ("" when unknown).
  std::string LineageJson(PatternId id) const;

 private:
  void Apply(const LineageEvent& event);

  PatternLedgerConfig config_;
  std::map<PatternId, PatternLineage> lineages_;
  std::vector<LineageEvent> pending_;
  uint64_t pending_seq_ = 0;
  uint64_t events_applied_ = 0;
  uint64_t evicted_dead_ = 0;
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_LINEAGE_H_
