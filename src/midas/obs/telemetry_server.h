#ifndef MIDAS_OBS_TELEMETRY_SERVER_H_
#define MIDAS_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace midas {
namespace obs {

/// One parsed HTTP request, as much of it as the telemetry routes need.
struct HttpRequest {
  std::string method;  ///< "GET", uppercased
  std::string path;    ///< "/metrics" (query string stripped)
  std::string query;   ///< "fmt=folded" (empty when absent)
  /// Request headers, names lowercased ("accept" -> "text/plain"). Values
  /// are trimmed of surrounding whitespace; duplicate names keep the first.
  std::map<std::string, std::string> headers;

  /// Value of `key` in the query string ("" when absent). Values are not
  /// percent-decoded — telemetry parameters are plain tokens.
  std::string QueryParam(const std::string& key) const;
  /// Header value by case-insensitive name ("" when absent).
  std::string Header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal dependency-free HTTP/1.1 introspection server over POSIX
/// sockets: one bounded accept thread serves registered GET routes and
/// closes each connection after the response (`Connection: close`).
///
/// Built for the operator loop, not for traffic: /metrics scrapes, a human
/// with curl, a CI smoke job. Design points:
///  - binds 127.0.0.1 only (introspection is not a public surface);
///  - `SO_REUSEADDR` so restarts do not trip over TIME_WAIT;
///  - port 0 binds an ephemeral port, reported by port() — tests never
///    race over fixed ports;
///  - clean shutdown: Stop() wakes the accept loop and joins the thread;
///  - malformed requests get 400, non-GET 405, unknown paths 404, a
///    throwing handler 500 — the server thread never propagates.
///
/// Handlers run on the server thread: they must only touch thread-safe
/// state (the metrics registry, the span profiler, atomics/mutexes of the
/// owning host). Register every route before Start().
class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Registers (or replaces) the handler for an exact path.
  void Handle(std::string path, HttpHandler handler);

  /// Registers (or replaces) a handler for every path starting with
  /// `prefix` (e.g. "/traces/" serving /traces/<id>). Exact routes win;
  /// among prefix routes the longest matching prefix wins. The handler
  /// sees the full request path and parses the suffix itself.
  void HandlePrefix(std::string prefix, HttpHandler handler);

  /// Binds and starts the accept thread. `port` 0 picks an ephemeral port.
  /// Returns false (with *error) when the socket cannot be set up.
  bool Start(int port, std::string* error = nullptr);

  /// Stops accepting, closes the listen socket and joins. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually bound port (resolves port-0 binds); 0 before Start.
  int port() const { return port_.load(std::memory_order_acquire); }
  /// "http://127.0.0.1:<port>" — for printing curl one-liners.
  std::string BaseUrl() const;

 private:
  void ServeLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  mutable std::mutex routes_mu_;
  std::map<std::string, HttpHandler> routes_;
  std::map<std::string, HttpHandler> prefix_routes_;

  int listen_fd_ = -1;
  std::atomic<int> port_{0};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_TELEMETRY_SERVER_H_
