#ifndef MIDAS_OBS_EVENT_LOG_H_
#define MIDAS_OBS_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace midas {
namespace obs {

/// One structured record per maintenance round (ApplyUpdate call): what the
/// batch looked like, how it was classified, what maintenance did, and the
/// resulting pattern-set quality. Serialized as one JSON line; the schema is
/// documented in docs/observability.md and guarded by a golden-file test.
struct MaintenanceEvent {
  uint64_t seq = 0;            ///< 1-based round number within the engine
  size_t additions = 0;        ///< |Δ⁺|
  size_t deletions = 0;        ///< |Δ⁻|
  size_t db_size = 0;          ///< |D ⊕ ΔD| after the update
  size_t patterns = 0;         ///< |P| after maintenance
  bool major = false;          ///< Algorithm 1 classification
  double graphlet_distance = 0.0;  ///< dist(ψ_D, ψ_{D⊕ΔD})
  double epsilon = 0.0;        ///< the ε it was compared against
  int candidates = 0;          ///< candidate patterns generated
  int swaps = 0;               ///< swaps performed
  /// Graceful-degradation report: whether the round's execution budget ran
  /// out, what tripped it ("none", "steps" or "deadline" — the
  /// ExecBudget::CauseName spelling), and the search steps spent.
  bool truncated = false;
  std::string degrade_reason = "none";
  uint64_t budget_steps = 0;
  /// Per-phase wall times in stats order (total first); keys are the
  /// MaintenanceStats field names ("total_ms", "apply_ms", ...).
  std::vector<std::pair<std::string, double>> phase_ms;
  /// Set-level quality after the round (scov/lcov/div/cog panels).
  double scov = 0.0;
  double lcov = 0.0;
  double div = 0.0;
  double cog_avg = 0.0;
  double cog_max = 0.0;
};

/// Append-only JSONL log of maintenance rounds with a pluggable sink.
/// Default behavior buffers lines in memory (inspectable via lines()); a
/// sink receives each serialized line as it is appended. Buffering can be
/// turned off for long-running deployments that only stream to a sink.
class MaintenanceEventLog {
 public:
  using Sink = std::function<void(const std::string& jsonl_line)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_buffering(bool on) { buffering_ = on; }

  void Append(const MaintenanceEvent& event);

  /// Appends an already-serialized single-line JSON record (no trailing
  /// newline) through the same buffering/sink path as Append. Used by the
  /// serving host for `serve_event` records (quarantines, recoveries)
  /// interleaved with the engine's per-round records.
  void AppendRaw(const std::string& jsonl_line);

  const std::vector<std::string>& lines() const { return lines_; }
  size_t size() const { return lines_.size(); }
  void Clear() { lines_.clear(); }

  /// Serializes one event to its canonical single-line JSON form (no
  /// trailing newline).
  static std::string ToJsonLine(const MaintenanceEvent& event);

 private:
  Sink sink_;
  bool buffering_ = true;
  std::vector<std::string> lines_;
};

/// Sink writing `line + "\n"` to a stream the caller keeps alive.
MaintenanceEventLog::Sink StreamSink(std::ostream* out);

/// Sink appending `line + "\n"` to a file (opened lazily, append mode,
/// flushed per line so tails see complete records).
MaintenanceEventLog::Sink FileSink(const std::string& path);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_EVENT_LOG_H_
