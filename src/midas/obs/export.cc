#include "midas/obs/export.h"

#include <sstream>

#include "midas/obs/json.h"
#include "midas/obs/trace.h"

namespace midas {
namespace obs {

namespace {

/// OpenMetrics exemplar suffix for one bucket line, or "" when no traced
/// observation landed there: ` # {trace_id="<32 hex>"} <value>`.
std::string ExemplarSuffix(const Histogram::Exemplar& e) {
  if (!e.valid) return std::string();
  TraceId id;
  id.hi = e.trace_hi;
  id.lo = e.trace_lo;
  std::string out = " # {trace_id=\"";
  out += EscapeLabelValue(id.ToHex());
  out += "\"} ";
  out += JsonWriter::FormatDouble(e.value);
  return out;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  auto valid = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':') {
      return true;
    }
    return !first && c >= '0' && c <= '9';
  };
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (char c : name) {
    out.push_back(valid(c, out.empty()) ? c : '_');
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* MetricsContentType(MetricsTextFormat format) {
  switch (format) {
    case MetricsTextFormat::kOpenMetrics:
      return "application/openmetrics-text; version=1.0.0; charset=utf-8";
    case MetricsTextFormat::kPrometheus0_0_4:
      break;
  }
  return "text/plain; version=0.0.4; charset=utf-8";
}

std::string ExportPrometheus(const MetricsRegistry& registry,
                             MetricsTextFormat format) {
  const bool exemplars = format == MetricsTextFormat::kOpenMetrics;
  std::ostringstream out;
  for (const Counter* c : registry.counters()) {
    const std::string name = SanitizeMetricName(c->name());
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << c->Value() << '\n';
  }
  for (const Gauge* g : registry.gauges()) {
    const std::string name = SanitizeMetricName(g->name());
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << JsonWriter::FormatDouble(g->Value()) << '\n';
  }
  for (const Histogram* h : registry.histograms()) {
    const std::string name = SanitizeMetricName(h->name());
    out << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->BucketCount(i);
      out << name << "_bucket{le=\""
          << EscapeLabelValue(JsonWriter::FormatDouble(bounds[i])) << "\"} "
          << cumulative;
      if (exemplars) out << ExemplarSuffix(h->BucketExemplar(i));
      out << '\n';
    }
    cumulative += h->BucketCount(bounds.size());
    out << name << "_bucket{le=\"+Inf\"} " << cumulative;
    if (exemplars) out << ExemplarSuffix(h->BucketExemplar(bounds.size()));
    out << '\n';
    out << name << "_sum " << JsonWriter::FormatDouble(h->Sum()) << '\n';
    out << name << "_count " << h->Count() << '\n';
  }
  if (format == MetricsTextFormat::kOpenMetrics) out << "# EOF\n";
  return out.str();
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  return ExportPrometheus(registry, MetricsTextFormat::kPrometheus0_0_4);
}

std::string ExportJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const Counter* c : registry.counters()) {
    w.Key(c->name()).Value(c->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const Gauge* g : registry.gauges()) {
    w.Key(g->name()).Value(g->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const Histogram* h : registry.histograms()) {
    w.Key(h->name()).BeginObject();
    w.Key("count").Value(h->Count());
    w.Key("sum").Value(h->Sum());
    w.Key("buckets").BeginArray();
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      cumulative += h->BucketCount(i);
      w.BeginObject();
      if (i < bounds.size()) {
        w.Key("le").Value(bounds[i]);
      } else {
        w.Key("le").Value("+Inf");
      }
      w.Key("count").Value(cumulative);
      Histogram::Exemplar e = h->BucketExemplar(i);
      if (e.valid) {
        TraceId id;
        id.hi = e.trace_hi;
        id.lo = e.trace_lo;
        w.Key("exemplar").BeginObject();
        w.Key("trace_id").Value(id.ToHex());
        w.Key("value").Value(e.value);
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace midas
