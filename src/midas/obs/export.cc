#include "midas/obs/export.h"

#include <sstream>

#include "midas/obs/json.h"

namespace midas {
namespace obs {

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const Counter* c : registry.counters()) {
    out << "# TYPE " << c->name() << " counter\n";
    out << c->name() << ' ' << c->Value() << '\n';
  }
  for (const Gauge* g : registry.gauges()) {
    out << "# TYPE " << g->name() << " gauge\n";
    out << g->name() << ' ' << JsonWriter::FormatDouble(g->Value()) << '\n';
  }
  for (const Histogram* h : registry.histograms()) {
    out << "# TYPE " << h->name() << " histogram\n";
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->BucketCount(i);
      out << h->name() << "_bucket{le=\"" << JsonWriter::FormatDouble(bounds[i])
          << "\"} " << cumulative << '\n';
    }
    cumulative += h->BucketCount(bounds.size());
    out << h->name() << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << h->name() << "_sum " << JsonWriter::FormatDouble(h->Sum()) << '\n';
    out << h->name() << "_count " << h->Count() << '\n';
  }
  return out.str();
}

std::string ExportJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const Counter* c : registry.counters()) {
    w.Key(c->name()).Value(c->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const Gauge* g : registry.gauges()) {
    w.Key(g->name()).Value(g->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const Histogram* h : registry.histograms()) {
    w.Key(h->name()).BeginObject();
    w.Key("count").Value(h->Count());
    w.Key("sum").Value(h->Sum());
    w.Key("buckets").BeginArray();
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      cumulative += h->BucketCount(i);
      w.BeginObject();
      if (i < bounds.size()) {
        w.Key("le").Value(bounds[i]);
      } else {
        w.Key("le").Value("+Inf");
      }
      w.Key("count").Value(cumulative);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace midas
