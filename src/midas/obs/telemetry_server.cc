#include "midas/obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr int kAcceptPollMs = 50;
constexpr int kIoTimeoutMs = 2000;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Reads until the header terminator, a size cap, a timeout, or EOF.
/// Telemetry requests are header-only GETs, so the body is never read.
bool ReadRequestHead(int fd, std::string* out) {
  char buf[1024];
  while (out->size() < kMaxRequestBytes) {
    if (out->find("\r\n\r\n") != std::string::npos ||
        out->find("\n\n") != std::string::npos) {
      return true;
    }
    struct pollfd p = {fd, POLLIN, 0};
    int ready = ::poll(&p, 1, kIoTimeoutMs);
    if (ready <= 0) return false;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out->append(buf, static_cast<size_t>(n));
  }
  return false;
}

/// Writes the whole response or gives up on a hard error / a peer that
/// makes no progress for kWriteStallLimitMs. EINTR (in poll or send) and
/// EAGAIN are retried — a signal must not truncate a /metrics scrape into
/// something a collector half-parses. Truncated responses are counted in
/// midas_telemetry_write_truncated_total.
void WriteAll(int fd, const std::string& data) {
  constexpr int kWriteStallLimitMs = 15000;
  size_t off = 0;
  int stalled_ms = 0;
  while (off < data.size()) {
    struct pollfd p = {fd, POLLOUT, 0};
    int ready = ::poll(&p, 1, kIoTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // One quiet poll is not a verdict; a receiver can stall under load
      // and resume. Only a sustained stall with zero progress aborts.
      stalled_ms += kIoTimeoutMs;
      if (stalled_ms >= kWriteStallLimitMs) break;
      continue;
    }
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;  // connection error
    }
    if (n == 0) break;  // peer stopped consuming
    off += static_cast<size_t>(n);
    stalled_ms = 0;  // progress resets the stall clock
  }
  if (off < data.size()) {
    auto& reg = MetricsRegistry::Current();
    if (reg.enabled()) {
      reg.GetCounter("midas_telemetry_write_truncated_total")->Increment();
    }
  }
}

/// Parses "GET /path?query HTTP/1.1". False on anything that does not look
/// like an HTTP request line (the 400 path).
bool ParseRequestLine(const std::string& head, HttpRequest* out) {
  size_t eol = head.find_first_of("\r\n");
  std::string line = head.substr(0, eol);
  std::istringstream in(line);
  std::string method, target, version;
  if (!(in >> method >> target >> version)) return false;
  if (version.rfind("HTTP/", 0) != 0) return false;
  if (target.empty() || target[0] != '/') return false;
  std::transform(method.begin(), method.end(), method.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  out->method = method;
  size_t q = target.find('?');
  out->path = target.substr(0, q);
  out->query = q == std::string::npos ? "" : target.substr(q + 1);
  return true;
}

/// Parses the header block after the request line into name -> value,
/// names lowercased. Tolerant: malformed lines are skipped, not fatal —
/// the request line already passed, and telemetry routes only consult
/// well-known headers (Accept).
void ParseHeaders(const std::string& head, HttpRequest* out) {
  size_t pos = head.find('\n');
  if (pos == std::string::npos) return;
  ++pos;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    std::string line = head.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;  // end of the header block
    size_t colon = line.find(':');
    if (colon != std::string::npos && colon > 0) {
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      size_t begin = line.find_first_not_of(" \t", colon + 1);
      size_t end = line.find_last_not_of(" \t");
      std::string value = begin == std::string::npos
                              ? ""
                              : line.substr(begin, end - begin + 1);
      out->headers.emplace(std::move(name), std::move(value));
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair = query.substr(
        pos, amp == std::string::npos ? std::string::npos : amp - pos);
    size_t eq = pair.find('=');
    if (pair.substr(0, eq) == key) {
      return eq == std::string::npos ? "" : pair.substr(eq + 1);
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return "";
}

std::string HttpRequest::Header(const std::string& name) const {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  auto it = headers.find(lower);
  return it == headers.end() ? "" : it->second;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Handle(std::string path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  routes_[std::move(path)] = std::move(handler);
}

void TelemetryServer::HandlePrefix(std::string prefix, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  prefix_routes_[std::move(prefix)] = std::move(handler);
}

bool TelemetryServer::Start(int port, std::string* error) {
  auto fail = [this, error](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) < 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_.store(ntohs(addr.sin_port), std::memory_order_release);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void TelemetryServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

std::string TelemetryServer::BaseUrl() const {
  return "http://127.0.0.1:" + std::to_string(port());
}

void TelemetryServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd p = {listen_fd_, POLLIN, 0};
    int ready = ::poll(&p, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void TelemetryServer::HandleConnection(int fd) {
  std::string head;
  HttpRequest request;
  HttpResponse response;
  if (!ReadRequestHead(fd, &head) || !ParseRequestLine(head, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    ParseHeaders(head, &request);
    if (request.method != "GET" && request.method != "HEAD") {
      response.status = 405;
      response.body = "only GET is served here\n";
    } else {
      response = Dispatch(request);
    }
  }

  // HEAD advertises the length GET would have sent, with an empty body.
  const size_t content_length = response.body.size();
  if (request.method == "HEAD") response.body.clear();

  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << StatusText(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << content_length
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  WriteAll(fd, out.str());
}

HttpResponse TelemetryServer::Dispatch(const HttpRequest& request) const {
  HttpHandler handler;
  std::string known;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(request.path);
    if (it != routes_.end()) {
      handler = it->second;
    } else {
      // Longest matching prefix wins: iterate the sorted map backwards so
      // "/traces/x/" is preferred over "/traces/".
      for (auto pit = prefix_routes_.rbegin(); pit != prefix_routes_.rend();
           ++pit) {
        if (request.path.compare(0, pit->first.size(), pit->first) == 0) {
          handler = pit->second;
          break;
        }
      }
      if (!handler) {
        for (const auto& [path, unused] : routes_) known += path + "\n";
        for (const auto& [path, unused] : prefix_routes_) {
          known += path + "*\n";
        }
      }
    }
  }
  HttpResponse response;
  if (!handler) {
    response.status = 404;
    response.body = "no route " + request.path + "; known routes:\n" + known;
    return response;
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = std::string("handler error: ") + e.what() + "\n";
    return response;
  } catch (...) {
    response.status = 500;
    response.body = "handler error\n";
    return response;
  }
}

}  // namespace obs
}  // namespace midas
