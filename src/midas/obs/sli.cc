#include "midas/obs/sli.h"

#include <algorithm>
#include <cmath>

#include "midas/common/stats.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

QualityDriftDetector::QualityDriftDetector(SliConfig config)
    : config_(config) {
  series_ = {Series{"scov", {}, {}}, Series{"lcov", {}, {}},
             Series{"div", {}, {}}, Series{"cog_avg", {}, {}}};
}

DriftFinding QualityDriftDetector::Observe(const QualitySample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ++rounds_;
  const double values[] = {sample.scov, sample.lcov, sample.div,
                           sample.cog_avg};

  DriftFinding finding;
  finding.round = rounds_;

  if (rounds_ <= config_.baseline_rounds) {
    for (size_t i = 0; i < series_.size(); ++i) {
      series_[i].baseline.push_back(values[i]);
    }
  } else {
    for (size_t i = 0; i < series_.size(); ++i) {
      series_[i].window.push_back(values[i]);
      while (series_[i].window.size() > config_.window) {
        series_[i].window.pop_front();
      }
    }

    // Test every SLI's window against its frozen baseline; the verdict
    // carries the worst (lowest-p) violator.
    if (!series_.empty() &&
        series_[0].window.size() >= std::max<size_t>(1, config_.min_window)) {
      for (const Series& s : series_) {
        std::vector<double> recent(s.window.begin(), s.window.end());
        KsResult ks = KsTest(s.baseline, recent);
        double b_mean = Mean(s.baseline);
        double w_mean = Mean(recent);
        double rel_delta =
            std::abs(w_mean - b_mean) / std::max(std::abs(b_mean), 1e-12);
        bool violates =
            ks.p_value < config_.alpha && rel_delta > config_.min_rel_delta;
        if (violates && (!finding.drifted || ks.p_value < finding.p_value)) {
          finding.drifted = true;
          finding.metric = s.name;
          finding.ks_statistic = ks.statistic;
          finding.p_value = ks.p_value;
          finding.baseline_mean = b_mean;
          finding.window_mean = w_mean;
        }
      }
    }
  }

  finding.newly_drifted = finding.drifted && !drifted_;
  finding.recovered = !finding.drifted && drifted_;
  drifted_ = finding.drifted;
  last_ = finding;

  MetricsRegistry& reg = MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetGauge("midas_quality_drift_status")->Set(drifted_ ? 1.0 : 0.0);
    reg.GetGauge("midas_quality_drift_ks_statistic")
        ->Set(finding.ks_statistic);
    if (finding.newly_drifted) {
      reg.GetCounter("midas_quality_drift_events_total")->Increment();
    }
  }
  return finding;
}

bool QualityDriftDetector::drifted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drifted_;
}

DriftFinding QualityDriftDetector::last_finding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

uint64_t QualityDriftDetector::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_;
}

bool QualityDriftDetector::baseline_frozen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_ >= config_.baseline_rounds;
}

void QualityDriftDetector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Series& s : series_) {
    s.baseline.clear();
    s.window.clear();
  }
  rounds_ = 0;
  drifted_ = false;
  last_ = DriftFinding();
}

}  // namespace obs
}  // namespace midas
