#ifndef MIDAS_OBS_PROFILE_H_
#define MIDAS_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace midas {
namespace obs {

/// Hierarchical span profiler: aggregates completed TraceSpans into a
/// path-keyed call tree, turning the flat per-phase histograms into an
/// actual profile of where a maintenance round spends its time.
///
/// How it works:
///  - Every live TraceSpan pushes its name onto a thread-local path stack
///    (parent linkage is lexical nesting on the owning thread).
///  - On Stop, the span records (count, total-ms, self-ms) under its full
///    path "root;child;leaf" — the classic folded-stacks key. Self time is
///    computed at record time: elapsed minus the elapsed time of the spans
///    that completed directly underneath it.
///  - Aggregation is a mutex-guarded map keyed by path; spans stop a
///    handful of times per maintenance round, so the lock is cold.
///
/// The profiler is *disabled by default*: TraceSpan checks
/// `SpanProfiler::Current().enabled()` once at construction, so a disabled
/// profiler costs one relaxed load per span. EngineHost enables it when
/// its telemetry server is on; tests isolate themselves with
/// ScopedSpanProfiler (same pattern as ScopedMetricsRegistry).
///
/// Caveat: spans that Pause() across a sibling phase (e.g. the two halves
/// of index maintenance) still parent the sibling lexically, so a parent's
/// self time is clamped at zero when its children's wall time exceeds its
/// own unpaused time.
class SpanProfiler {
 public:
  /// Aggregated statistics of one call-tree path.
  struct PathStats {
    uint64_t count = 0;    ///< completed spans at this path
    double total_ms = 0.0; ///< inclusive wall time
    double self_ms = 0.0;  ///< exclusive wall time (children subtracted)
  };

  SpanProfiler() = default;
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drops every aggregated path (enabled state is kept).
  void Clear();

  /// Number of distinct paths aggregated so far.
  size_t size() const;

  /// The aggregated tree, sorted lexicographically by path. A parent always
  /// precedes its own children ("a" < "a;b"); sibling subtrees interleave
  /// by plain string order.
  std::vector<std::pair<std::string, PathStats>> Snapshot() const;

  /// Folded-stacks exposition: one `path <self-microseconds>` line per
  /// path, the input format of flamegraph.pl / speedscope / inferno.
  /// Zero-self paths are kept (count still carries information).
  std::string ExportFolded() const;

  /// Human-readable top-N table sorted by self time (all paths when
  /// `top_n` is 0): path, count, total ms, self ms, mean ms.
  std::string ExportTopTable(size_t top_n = 20) const;

  /// --- TraceSpan integration (thread-local frame stack) -----------------
  /// Pushes `name` onto the calling thread's path stack. Paired with
  /// ExitFrame in LIFO order — guaranteed by TraceSpan being a scoped
  /// object.
  static void EnterFrame(std::string name);
  /// Pops the top frame, charges `elapsed_ms` to the parent frame's child
  /// time, and records the completed path into Current().
  static void ExitFrame(double elapsed_ms);
  /// Depth of the calling thread's frame stack (tests).
  static size_t FrameDepth();

  /// --- worker-thread attribution (common/parallel.h) --------------------
  /// Frame stacks are thread-local, so a span opened on a TaskPool worker
  /// would otherwise record under a bare root path (the worker's stack is
  /// empty) instead of under the span that spawned the parallel region.
  /// The pool captures the submitting thread's CurrentPath() per batch and
  /// installs it as the worker's inherited prefix while a task runs; every
  /// path the worker records is then prefixed with it, so ExportFolded
  /// merges worker time under the spawning span's path.
  /// Full ";"-joined path of the calling thread's live spans, including any
  /// inherited prefix; empty when no span is live.
  static std::string CurrentPath();
  /// Replaces the calling thread's inherited path prefix, returning the
  /// previous one (restore it when the task finishes).
  static std::string SetInheritedPrefix(std::string prefix);

  /// The process-wide default profiler.
  static SpanProfiler& Global();
  /// The profiler spans record into: Global() unless a ScopedSpanProfiler
  /// override is active.
  static SpanProfiler& Current();

 private:
  friend class ScopedSpanProfiler;
  static std::atomic<SpanProfiler*>& CurrentSlot();

  void Record(const std::string& path, double total_ms, double self_ms);

  mutable std::mutex mu_;
  std::map<std::string, PathStats> tree_;
  std::atomic<bool> enabled_{false};
};

/// RAII override of SpanProfiler::Current() — the test-isolation hook.
/// Scopes nest; each restores the previous profiler on destruction.
class ScopedSpanProfiler {
 public:
  explicit ScopedSpanProfiler(SpanProfiler& profiler);
  ~ScopedSpanProfiler();
  ScopedSpanProfiler(const ScopedSpanProfiler&) = delete;
  ScopedSpanProfiler& operator=(const ScopedSpanProfiler&) = delete;

 private:
  SpanProfiler* prev_;
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_PROFILE_H_
