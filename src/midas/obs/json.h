#ifndef MIDAS_OBS_JSON_H_
#define MIDAS_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace midas {
namespace obs {

/// Minimal dependency-free JSON emission/ingestion for the observability
/// layer: the event log, the exporters, and MaintenanceStats::ToJson. Not a
/// general-purpose JSON library — exactly what the schemas in
/// docs/observability.md need.

/// Streaming writer producing compact (single-line) JSON. Keys/values must
/// be emitted in valid order; commas and escaping are handled.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }

  const std::string& str() const { return out_; }

  /// Escapes `s` for inclusion between double quotes.
  static std::string Escape(std::string_view s);
  /// Round-trippable shortest representation (std::to_chars); non-finite
  /// values are emitted as quoted strings ("NaN"/"Inf"/"-Inf") since JSON
  /// has no literal for them.
  static std::string FormatDouble(double v);

 private:
  void MaybeComma();

  std::string out_;
  std::vector<bool> has_item_;  // per open container
  bool after_key_ = false;
};

/// A JSON document flattened to dotted-path leaves: {"a":{"b":1}} yields
/// numbers["a.b"] == 1. Arrays index as "a.0", "a.1", ...
struct FlatJson {
  bool ok = false;
  std::string error;
  std::map<std::string, double> numbers;
  std::map<std::string, bool> bools;
  std::map<std::string, std::string> strings;

  bool Has(const std::string& path) const {
    return numbers.count(path) > 0 || bools.count(path) > 0 ||
           strings.count(path) > 0;
  }
};

/// Parses one JSON value (object/array/scalar) into flattened leaves.
/// Strict enough to reject malformed documents (the CI smoke test and the
/// event-log schema test rely on that); `null` leaves are recorded in
/// `strings` as "null".
FlatJson ParseFlatJson(std::string_view text);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_JSON_H_
