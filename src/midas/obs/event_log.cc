#include "midas/obs/event_log.h"

#include <fstream>
#include <memory>
#include <ostream>

#include "midas/obs/json.h"

namespace midas {
namespace obs {

std::string MaintenanceEventLog::ToJsonLine(const MaintenanceEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("seq").Value(e.seq);
  w.Key("additions").Value(static_cast<uint64_t>(e.additions));
  w.Key("deletions").Value(static_cast<uint64_t>(e.deletions));
  w.Key("db_size").Value(static_cast<uint64_t>(e.db_size));
  w.Key("patterns").Value(static_cast<uint64_t>(e.patterns));
  w.Key("major").Value(e.major);
  w.Key("graphlet_distance").Value(e.graphlet_distance);
  w.Key("epsilon").Value(e.epsilon);
  w.Key("candidates").Value(e.candidates);
  w.Key("swaps").Value(e.swaps);
  w.Key("truncated").Value(e.truncated);
  w.Key("degrade_reason").Value(e.degrade_reason);
  w.Key("budget_steps").Value(e.budget_steps);
  w.Key("phases").BeginObject();
  for (const auto& [name, ms] : e.phase_ms) {
    w.Key(name).Value(ms);
  }
  w.EndObject();
  w.Key("quality").BeginObject();
  w.Key("scov").Value(e.scov);
  w.Key("lcov").Value(e.lcov);
  w.Key("div").Value(e.div);
  w.Key("cog_avg").Value(e.cog_avg);
  w.Key("cog_max").Value(e.cog_max);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void MaintenanceEventLog::Append(const MaintenanceEvent& event) {
  AppendRaw(ToJsonLine(event));
}

void MaintenanceEventLog::AppendRaw(const std::string& jsonl_line) {
  if (sink_) sink_(jsonl_line);
  if (buffering_) lines_.push_back(jsonl_line);
}

MaintenanceEventLog::Sink StreamSink(std::ostream* out) {
  return [out](const std::string& line) { *out << line << '\n'; };
}

MaintenanceEventLog::Sink FileSink(const std::string& path) {
  auto stream = std::make_shared<std::ofstream>();
  return [stream, path](const std::string& line) {
    if (!stream->is_open()) {
      stream->open(path, std::ios::out | std::ios::app);
    }
    if (stream->is_open()) {
      *stream << line << '\n';
      stream->flush();
    }
  };
}

}  // namespace obs
}  // namespace midas
