#ifndef MIDAS_OBS_TRACE_H_
#define MIDAS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "midas/common/timer.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// 128-bit trace identifier of one update batch's end-to-end journey
/// (Submit -> queue -> writer -> maintenance phases -> publish). Zero is
/// the null id (no trace).
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  bool operator==(const TraceId& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const TraceId& o) const { return !(*this == o); }

  /// 32 lowercase hex chars ("000...0" for the null id).
  std::string ToHex() const;
  /// Parses ToHex output; returns the null id on malformed input.
  static TraceId FromHex(std::string_view hex);
};

/// Mints a fresh process-unique TraceId (monotonic counter mixed through
/// splitmix64 with per-process entropy, so ids from concurrent hosts in one
/// process — or across restarts — do not collide in practice).
TraceId MintTraceId();

/// Causal context of one update batch, propagated from EngineHost::Submit
/// through the UpdateQueue, the maintenance writer and every TaskPool worker
/// that executes kernel work on the batch's behalf (common/parallel installs
/// it around each chunk, so work is attributed to the owning batch even when
/// stolen).
///
/// The context is installed thread-locally (ScopedTraceContext); hot-path
/// hooks (ComputeCache lookups, TraceSpan exemplars) read Current() — one
/// thread-local load — and account into relaxed atomic counters. The context
/// never influences maintenance decisions, which is how tracing preserves
/// the bit-identical-at-any-thread-count determinism contract.
class TraceContext {
 public:
  explicit TraceContext(TraceId id) : id_(id) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const TraceId& id() const { return id_; }

  /// Fresh span id within this trace (1-based; 0 is "no span").
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- per-trace cost counters (relaxed atomics; any thread) -------------
  void AddBudgetSteps(uint64_t n) {
    budget_steps_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountCacheLookup(bool hit) {
    (hit ? cache_hits_ : cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// ExecBudget::Cause of the round's degradation, as an int so obs does not
  /// depend on common/budget (0 = none; the host maps it back to the
  /// "steps"/"deadline" spelling).
  void SetDegradeCause(int cause) {
    degrade_cause_.store(cause, std::memory_order_relaxed);
  }

  uint64_t budget_steps() const {
    return budget_steps_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  int degrade_cause() const {
    return degrade_cause_.load(std::memory_order_relaxed);
  }

  /// The calling thread's installed context (nullptr when none).
  static TraceContext* Current();
  /// Installs `ctx` on the calling thread, returning the previous one —
  /// TaskPool workers use this to inherit the submitting batch's context
  /// for the duration of a chunk.
  static TraceContext* Exchange(TraceContext* ctx);

 private:
  const TraceId id_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> budget_steps_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<int> degrade_cause_{0};
};

/// RAII thread-local install of a TraceContext: spans stopped and cache
/// lookups made inside the scope are attributed to it. Nests; restores the
/// previous context on destruction. nullptr is allowed (no-op scope).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext* ctx)
      : prev_(TraceContext::Exchange(ctx)) {}
  ~ScopedTraceContext() { TraceContext::Exchange(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII scoped timer: measures a region with a pausable midas::Timer and, on
/// Stop()/destruction, records the elapsed milliseconds into
///  - a duration Histogram of the current MetricsRegistry (skipped entirely,
///    clock reads included, when the registry is disabled), and
///  - an optional `double*` accumulator (always written when provided, so
///    MaintenanceStats keeps its per-phase breakdown even with metrics off).
///
/// Pause()/Resume() delegate to the underlying Timer, which lets one span
/// cover a non-contiguous phase (e.g. the two halves of index maintenance in
/// Algorithm 1) without double counting.
///
/// Spans nest: depth() is 1 for a top-level span, 2 for a span opened while
/// another is live, etc. Nested spans are included in their parent's wall
/// time — the histograms record inclusive durations.
///
/// When the current SpanProfiler (obs/profile.h) is enabled, every span
/// additionally links to its lexical parent through a thread-local frame
/// stack and, on Stop, records its full path into the profiler's call
/// tree. With the profiler disabled (the default) this costs one relaxed
/// load per span.
class TraceSpan {
 public:
  /// Records into the current registry's histogram `histogram_name`
  /// (registered on first use with the default latency buckets); the same
  /// name keys the span in the profiler's call tree.
  explicit TraceSpan(std::string_view histogram_name,
                     double* accumulate_ms = nullptr);
  /// Records into a pre-resolved histogram (may be nullptr to only feed the
  /// accumulator); the histogram's name (if any) keys the profiler path.
  explicit TraceSpan(Histogram* histogram, double* accumulate_ms = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Pause() { timer_.Pause(); }
  void Resume() { timer_.Resume(); }

  /// Finalizes the span now (records + leaves the nesting stack); the
  /// destructor and further Pause()/Resume()/Stop() become no-ops.
  void Stop();

  /// Accumulated milliseconds so far (0 when the span is inactive because
  /// the registry is disabled and no accumulator was given).
  double ElapsedMs() const { return active_ ? timer_.ElapsedMs() : 0.0; }

  /// 1-based nesting depth of this span at construction time.
  int depth() const { return depth_; }
  /// Number of live spans on this thread.
  static int CurrentDepth();

 private:
  void Init(Histogram* histogram, double* accumulate_ms,
            std::string_view name);

  Timer timer_;
  Histogram* histogram_ = nullptr;
  double* accumulate_ms_ = nullptr;
  int depth_ = 0;
  bool active_ = false;
  bool stopped_ = false;
  bool profiled_ = false;  ///< enrolled in the SpanProfiler frame stack
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_TRACE_H_
