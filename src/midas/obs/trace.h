#ifndef MIDAS_OBS_TRACE_H_
#define MIDAS_OBS_TRACE_H_

#include <string>
#include <string_view>

#include "midas/common/timer.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// RAII scoped timer: measures a region with a pausable midas::Timer and, on
/// Stop()/destruction, records the elapsed milliseconds into
///  - a duration Histogram of the current MetricsRegistry (skipped entirely,
///    clock reads included, when the registry is disabled), and
///  - an optional `double*` accumulator (always written when provided, so
///    MaintenanceStats keeps its per-phase breakdown even with metrics off).
///
/// Pause()/Resume() delegate to the underlying Timer, which lets one span
/// cover a non-contiguous phase (e.g. the two halves of index maintenance in
/// Algorithm 1) without double counting.
///
/// Spans nest: depth() is 1 for a top-level span, 2 for a span opened while
/// another is live, etc. Nested spans are included in their parent's wall
/// time — the histograms record inclusive durations.
///
/// When the current SpanProfiler (obs/profile.h) is enabled, every span
/// additionally links to its lexical parent through a thread-local frame
/// stack and, on Stop, records its full path into the profiler's call
/// tree. With the profiler disabled (the default) this costs one relaxed
/// load per span.
class TraceSpan {
 public:
  /// Records into the current registry's histogram `histogram_name`
  /// (registered on first use with the default latency buckets); the same
  /// name keys the span in the profiler's call tree.
  explicit TraceSpan(std::string_view histogram_name,
                     double* accumulate_ms = nullptr);
  /// Records into a pre-resolved histogram (may be nullptr to only feed the
  /// accumulator); the histogram's name (if any) keys the profiler path.
  explicit TraceSpan(Histogram* histogram, double* accumulate_ms = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Pause() { timer_.Pause(); }
  void Resume() { timer_.Resume(); }

  /// Finalizes the span now (records + leaves the nesting stack); the
  /// destructor and further Pause()/Resume()/Stop() become no-ops.
  void Stop();

  /// Accumulated milliseconds so far (0 when the span is inactive because
  /// the registry is disabled and no accumulator was given).
  double ElapsedMs() const { return active_ ? timer_.ElapsedMs() : 0.0; }

  /// 1-based nesting depth of this span at construction time.
  int depth() const { return depth_; }
  /// Number of live spans on this thread.
  static int CurrentDepth();

 private:
  void Init(Histogram* histogram, double* accumulate_ms,
            std::string_view name);

  Timer timer_;
  Histogram* histogram_ = nullptr;
  double* accumulate_ms_ = nullptr;
  int depth_ = 0;
  bool active_ = false;
  bool stopped_ = false;
  bool profiled_ = false;  ///< enrolled in the SpanProfiler frame stack
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_TRACE_H_
