#include "midas/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace midas {
namespace obs {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_ += ',';
    has_item_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_item_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_item_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  out_ += FormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::Value(int v) {
  MaybeComma();
  char buf[16];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::FormatDouble(double v) {
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Inf\"" : "\"-Inf\"";
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, end);
}

namespace {

class FlatParser {
 public:
  explicit FlatParser(std::string_view text) : s_(text) {}

  FlatJson Run() {
    FlatJson out;
    SkipWs();
    if (!ParseValue(&out, "")) {
      out.ok = false;
      if (out.error.empty()) out.error = Error("invalid JSON value");
      return out;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      out.ok = false;
      out.error = Error("trailing characters");
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  std::string Error(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  static std::string Join(const std::string& prefix, const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    std::string v;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        v += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char e = s_[pos_++];
      switch (e) {
        case '"': v += '"'; break;
        case '\\': v += '\\'; break;
        case '/': v += '/'; break;
        case 'n': v += '\n'; break;
        case 'r': v += '\r'; break;
        case 't': v += '\t'; break;
        case 'b': v += '\b'; break;
        case 'f': v += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // ASCII only; anything else degrades to '?' (good enough for the
          // metric/event schemas, which are ASCII by construction).
          v += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    if (!Consume('"')) return false;
    *out = std::move(v);
    return true;
  }

  bool ParseValue(FlatJson* out, const std::string& path) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return ParseObject(out, path);
    if (c == '[') return ParseArray(out, path);
    if (c == '"') {
      std::string v;
      if (!ParseString(&v)) return false;
      out->strings[path] = std::move(v);
      return true;
    }
    if (ConsumeLiteral("true")) {
      out->bools[path] = true;
      return true;
    }
    if (ConsumeLiteral("false")) {
      out->bools[path] = false;
      return true;
    }
    if (ConsumeLiteral("null")) {
      out->strings[path] = "null";
      return true;
    }
    // Number.
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->numbers[path] = v;
    return true;
  }

  bool ParseObject(FlatJson* out, const std::string& path) {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      if (!ParseValue(out, Join(path, key))) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(FlatJson* out, const std::string& path) {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    size_t index = 0;
    while (true) {
      if (!ParseValue(out, Join(path, std::to_string(index++)))) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

FlatJson ParseFlatJson(std::string_view text) {
  return FlatParser(text).Run();
}

}  // namespace obs
}  // namespace midas
