#include "midas/obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "midas/obs/json.h"
#include "midas/obs/telemetry_server.h"

namespace midas {
namespace obs {

namespace {

void AppendFull(JsonWriter& w, const FlightRecord& r) {
  w.BeginObject();
  w.Key("trace_id").Value(r.trace_id);
  if (!r.links.empty()) {
    w.Key("links").BeginArray();
    for (const auto& link : r.links) w.Value(link);
    w.EndArray();
  }
  w.Key("seq").Value(r.seq);
  w.Key("ticket").Value(r.ticket);
  w.Key("additions").Value(static_cast<uint64_t>(r.additions));
  w.Key("deletions").Value(static_cast<uint64_t>(r.deletions));
  w.Key("coalesced_parts").Value(static_cast<uint64_t>(r.coalesced_parts));
  w.Key("admission").Value(r.admission);
  w.Key("queue_wait_ms").Value(r.queue_wait_ms);
  w.Key("attempts").Value(r.attempts);
  w.Key("retries").Value(r.retries);
  w.Key("recovered").Value(r.recovered);
  w.Key("outcome").Value(r.outcome);
  if (!r.error.empty()) w.Key("error").Value(r.error);
  w.Key("total_ms").Value(r.total_ms);
  w.Key("phases").BeginObject();
  for (const auto& [name, ms] : r.phase_ms) w.Key(name).Value(ms);
  w.EndObject();
  double slowest_ms = 0.0;
  std::string slowest = r.SlowestPhase(&slowest_ms);
  if (!slowest.empty()) {
    w.Key("slowest_phase").Value(slowest);
    w.Key("slowest_phase_ms").Value(slowest_ms);
  }
  w.Key("budget_steps").Value(r.budget_steps);
  w.Key("truncated").Value(r.truncated);
  w.Key("degrade_reason").Value(r.degrade_reason);
  w.Key("view_strategy").Value(r.view_strategy);
  w.Key("view_delta_rows").Value(static_cast<uint64_t>(r.view_delta_rows));
  w.Key("view_rescan_rows").Value(static_cast<uint64_t>(r.view_rescan_rows));
  w.Key("cache_hits").Value(r.cache_hits);
  w.Key("cache_misses").Value(r.cache_misses);
  w.Key("slo_violation").Value(r.slo_violation);
  w.Key("drift_coincident").Value(r.drift_coincident);
  w.Key("quality_delta").BeginObject();
  w.Key("scov").Value(r.scov_delta);
  w.Key("lcov").Value(r.lcov_delta);
  w.Key("div").Value(r.div_delta);
  w.Key("cog").Value(r.cog_delta);
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string FlightRecord::SlowestPhase(double* ms) const {
  std::string best;
  double best_ms = -1.0;
  for (const auto& [name, phase_wall] : phase_ms) {
    if (phase_wall > best_ms) {
      best_ms = phase_wall;
      best = name;
    }
  }
  if (ms != nullptr) *ms = best_ms < 0.0 ? 0.0 : best_ms;
  return best;
}

size_t FlightRecord::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += trace_id.size() + admission.size() + outcome.size() +
           error.size() + degrade_reason.size() + view_strategy.size();
  for (const std::string& link : links) bytes += sizeof(std::string) +
                                                 link.size();
  for (const auto& [name, ms] : phase_ms) {
    (void)ms;
    bytes += sizeof(std::pair<std::string, double>) + name.size();
  }
  return bytes;
}

std::string FlightRecord::ToJson() const {
  JsonWriter w;
  AppendFull(w, *this);
  return w.str();
}

void FlightRecord::AppendSummary(JsonWriter& w) const {
  w.BeginObject();
  w.Key("trace_id").Value(trace_id);
  w.Key("seq").Value(seq);
  w.Key("outcome").Value(outcome);
  w.Key("admission").Value(admission);
  w.Key("total_ms").Value(total_ms);
  w.Key("queue_wait_ms").Value(queue_wait_ms);
  double slowest_ms = 0.0;
  std::string slowest = SlowestPhase(&slowest_ms);
  if (!slowest.empty()) {
    w.Key("slowest_phase").Value(slowest);
    w.Key("slowest_phase_ms").Value(slowest_ms);
  }
  w.Key("retries").Value(retries);
  w.Key("truncated").Value(truncated);
  w.Key("view_strategy").Value(view_strategy);
  w.Key("slo_violation").Value(slo_violation);
  w.Key("drift_coincident").Value(drift_coincident);
  w.EndObject();
}

std::string FlightRecord::ToFolded() const {
  // Phases partition the round, so each phase's wall time is its self time;
  // whatever the round spent outside phase spans is the root's own self
  // time. Durations are emitted in integer microseconds (folded-stack
  // "sample" counts must be integral for flamegraph.pl).
  std::string out;
  char line[160];
  double phases_total = 0.0;
  for (const auto& [name, ms] : phase_ms) {
    phases_total += ms;
    std::snprintf(line, sizeof(line), "midas_round;%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(ms * 1000.0 + 0.5));
    out += line;
  }
  double self = total_ms - phases_total;
  if (self < 0.0) self = 0.0;
  std::snprintf(line, sizeof(line), "midas_round %llu\n",
                static_cast<unsigned long long>(self * 1000.0 + 0.5));
  out += line;
  return out;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config),
      recent_(std::max<size_t>(config.capacity, 1)),
      retained_(std::max<size_t>(config.retained_capacity, 1)) {}

bool FlightRecorder::Interesting(const FlightRecord& record) {
  return record.slo_violation || record.truncated ||
         record.degrade_reason != "none" || record.retries > 0 ||
         record.recovered || record.drift_coincident || record.outcome != "ok";
}

void FlightRecorder::Record(std::shared_ptr<const FlightRecord> record) {
  if (record == nullptr) return;
  const bool interesting = Interesting(*record);
  if (!interesting && config_.sample_every > 1) {
    uint64_t n = boring_seen_.fetch_add(1, std::memory_order_relaxed);
    if (n % config_.sample_every != 0) {
      sampled_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  uint64_t slot = recent_next_.fetch_add(1, std::memory_order_relaxed);
  recent_[slot % recent_.size()].store(record, std::memory_order_release);
  if (interesting) {
    uint64_t rslot = retained_next_.fetch_add(1, std::memory_order_relaxed);
    retained_[rslot % retained_.size()].store(std::move(record),
                                              std::memory_order_release);
  }
}

size_t FlightRecorder::ApproxBytes() const {
  // Records shared between the two rings are counted twice; the watchdog
  // only needs an upper-ish bound that moves with retention, not a census.
  size_t bytes = sizeof(*this);
  auto sum = [&bytes](const std::vector<Slot>& ring) {
    for (const Slot& slot : ring) {
      auto record = slot.load(std::memory_order_acquire);
      if (record != nullptr) bytes += record->ApproxBytes();
    }
  };
  sum(recent_);
  sum(retained_);
  return bytes;
}

std::shared_ptr<const FlightRecord> FlightRecorder::Find(
    std::string_view trace_id_hex) const {
  // Newest-first scan (Snapshot order) so an id reused across ring wraps
  // resolves to the most recent flight.
  for (const auto& record : Snapshot()) {
    if (record->trace_id == trace_id_hex) return record;
  }
  return nullptr;
}

std::vector<std::shared_ptr<const FlightRecord>> FlightRecorder::Snapshot()
    const {
  std::vector<std::shared_ptr<const FlightRecord>> out;
  out.reserve(recent_.size() + retained_.size());
  std::unordered_set<std::string> seen;
  auto drain = [&](const std::vector<Slot>& ring,
                   const std::atomic<uint64_t>& next) {
    uint64_t head = next.load(std::memory_order_acquire);
    const size_t n = ring.size();
    // Walk backwards from the most recently written slot.
    for (size_t i = 0; i < n; ++i) {
      uint64_t idx = (head + n - 1 - i) % n;
      auto record = ring[idx].load(std::memory_order_acquire);
      if (record == nullptr) continue;
      if (!seen.insert(record->trace_id).second) continue;
      out.push_back(std::move(record));
    }
  };
  drain(recent_, recent_next_);
  drain(retained_, retained_next_);
  // Interleave the two rings into one newest-first listing. Ring order is
  // only approximate under concurrent writers; seq (then ticket) is the
  // authoritative commit order.
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     if (a->seq != b->seq) return a->seq > b->seq;
                     return a->ticket > b->ticket;
                   });
  return out;
}

void InstallTraceRoutes(TelemetryServer* server,
                        const FlightRecorder* recorder) {
  server->Handle("/traces", [recorder](const HttpRequest& request) {
    size_t limit = recorder->config().capacity;
    const std::string n = request.QueryParam("n");
    if (!n.empty()) {
      limit = static_cast<size_t>(std::strtoull(n.c_str(), nullptr, 10));
      if (limit == 0) limit = 1;
    }
    auto records = recorder->Snapshot();
    if (records.size() > limit) records.resize(limit);
    JsonWriter w;
    w.BeginObject();
    w.Key("recorded").Value(recorder->recorded());
    w.Key("sampled_out").Value(recorder->sampled_out());
    w.Key("traces").BeginArray();
    for (const auto& record : records) record->AppendSummary(w);
    w.EndArray();
    w.EndObject();
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = w.str();
    return response;
  });
  server->HandlePrefix("/traces/", [recorder](const HttpRequest& request) {
    const std::string id = request.path.substr(std::string("/traces/").size());
    HttpResponse response;
    auto record = recorder->Find(id);
    if (record == nullptr) {
      response.status = 404;
      response.body = "no such trace (evicted or never recorded)\n";
      return response;
    }
    if (request.QueryParam("fmt") == "folded") {
      response.body = record->ToFolded();
      return response;
    }
    response.content_type = "application/json; charset=utf-8";
    response.body = record->ToJson();
    return response;
  });
}

}  // namespace obs
}  // namespace midas
