#include "midas/obs/trace.h"

#include "midas/obs/profile.h"

namespace midas {
namespace obs {

namespace {
thread_local int g_span_depth = 0;
}  // namespace

TraceSpan::TraceSpan(std::string_view histogram_name, double* accumulate_ms) {
  MetricsRegistry& reg = MetricsRegistry::Current();
  Init(reg.enabled() ? reg.GetHistogram(histogram_name) : nullptr,
       accumulate_ms, histogram_name);
}

TraceSpan::TraceSpan(Histogram* histogram, double* accumulate_ms) {
  Init(histogram, accumulate_ms,
       histogram != nullptr ? std::string_view(histogram->name())
                            : std::string_view());
}

void TraceSpan::Init(Histogram* histogram, double* accumulate_ms,
                     std::string_view name) {
  histogram_ = histogram;
  accumulate_ms_ = accumulate_ms;
  profiled_ = !name.empty() && SpanProfiler::Current().enabled();
  active_ = histogram_ != nullptr || accumulate_ms_ != nullptr || profiled_;
  if (!active_) {
    stopped_ = true;  // nothing to record; make Stop()/dtor no-ops
    return;
  }
  if (profiled_) SpanProfiler::EnterFrame(std::string(name));
  depth_ = ++g_span_depth;
  timer_.Reset();  // exclude registry lookup time from the measured region
}

void TraceSpan::Stop() {
  if (stopped_) return;
  stopped_ = true;
  --g_span_depth;
  double ms = timer_.ElapsedMs();
  if (accumulate_ms_ != nullptr) *accumulate_ms_ += ms;
  if (histogram_ != nullptr) histogram_->Observe(ms);
  if (profiled_) SpanProfiler::ExitFrame(ms);
}

TraceSpan::~TraceSpan() { Stop(); }

int TraceSpan::CurrentDepth() { return g_span_depth; }

}  // namespace obs
}  // namespace midas
