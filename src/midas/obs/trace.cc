#include "midas/obs/trace.h"

namespace midas {
namespace obs {

namespace {
thread_local int g_span_depth = 0;
}  // namespace

TraceSpan::TraceSpan(std::string_view histogram_name, double* accumulate_ms) {
  MetricsRegistry& reg = MetricsRegistry::Current();
  Init(reg.enabled() ? reg.GetHistogram(histogram_name) : nullptr,
       accumulate_ms);
}

TraceSpan::TraceSpan(Histogram* histogram, double* accumulate_ms) {
  Init(histogram, accumulate_ms);
}

void TraceSpan::Init(Histogram* histogram, double* accumulate_ms) {
  histogram_ = histogram;
  accumulate_ms_ = accumulate_ms;
  active_ = histogram_ != nullptr || accumulate_ms_ != nullptr;
  if (!active_) {
    stopped_ = true;  // nothing to record; make Stop()/dtor no-ops
    return;
  }
  depth_ = ++g_span_depth;
  timer_.Reset();  // exclude registry lookup time from the measured region
}

void TraceSpan::Stop() {
  if (stopped_) return;
  stopped_ = true;
  --g_span_depth;
  double ms = timer_.ElapsedMs();
  if (accumulate_ms_ != nullptr) *accumulate_ms_ += ms;
  if (histogram_ != nullptr) histogram_->Observe(ms);
}

TraceSpan::~TraceSpan() { Stop(); }

int TraceSpan::CurrentDepth() { return g_span_depth; }

}  // namespace obs
}  // namespace midas
