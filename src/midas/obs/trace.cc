#include "midas/obs/trace.h"

#include <chrono>

#include "midas/obs/profile.h"

namespace midas {
namespace obs {

namespace {

thread_local int g_span_depth = 0;
thread_local TraceContext* g_current_trace = nullptr;

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

char HexDigit(uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void AppendHex64(std::string& out, uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(HexDigit((v >> shift) & 0xF));
  }
}

}  // namespace

std::string TraceId::ToHex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(out, hi);
  AppendHex64(out, lo);
  return out;
}

TraceId TraceId::FromHex(std::string_view hex) {
  if (hex.size() != 32) return TraceId();
  TraceId id;
  for (size_t i = 0; i < 32; ++i) {
    char c = hex[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return TraceId();
    }
    uint64_t& half = i < 16 ? id.hi : id.lo;
    half = (half << 4) | nibble;
  }
  return id;
}

TraceId MintTraceId() {
  // Per-process entropy: the startup clock reading hashed once. The low half
  // is a strictly monotonic counter mixed through splitmix64, so ids within
  // a process never repeat and are uniformly spread across buckets.
  static const uint64_t process_salt = SplitMix64(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  static std::atomic<uint64_t> next{1};
  uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  TraceId id;
  id.hi = SplitMix64(process_salt ^ n);
  id.lo = SplitMix64(n);
  if (!id.valid()) id.lo = 1;  // never mint the null id
  return id;
}

TraceContext* TraceContext::Current() { return g_current_trace; }

TraceContext* TraceContext::Exchange(TraceContext* ctx) {
  TraceContext* prev = g_current_trace;
  g_current_trace = ctx;
  return prev;
}

TraceSpan::TraceSpan(std::string_view histogram_name, double* accumulate_ms) {
  MetricsRegistry& reg = MetricsRegistry::Current();
  Init(reg.enabled() ? reg.GetHistogram(histogram_name) : nullptr,
       accumulate_ms, histogram_name);
}

TraceSpan::TraceSpan(Histogram* histogram, double* accumulate_ms) {
  Init(histogram, accumulate_ms,
       histogram != nullptr ? std::string_view(histogram->name())
                            : std::string_view());
}

void TraceSpan::Init(Histogram* histogram, double* accumulate_ms,
                     std::string_view name) {
  histogram_ = histogram;
  accumulate_ms_ = accumulate_ms;
  profiled_ = !name.empty() && SpanProfiler::Current().enabled();
  active_ = histogram_ != nullptr || accumulate_ms_ != nullptr || profiled_;
  if (!active_) {
    stopped_ = true;  // nothing to record; make Stop()/dtor no-ops
    return;
  }
  if (profiled_) SpanProfiler::EnterFrame(std::string(name));
  depth_ = ++g_span_depth;
  timer_.Reset();  // exclude registry lookup time from the measured region
}

void TraceSpan::Stop() {
  if (stopped_) return;
  stopped_ = true;
  --g_span_depth;
  double ms = timer_.ElapsedMs();
  if (accumulate_ms_ != nullptr) *accumulate_ms_ += ms;
  if (histogram_ != nullptr) {
    // A traced span tags its bucket with the owning batch's trace id, so
    // the histogram's tail buckets link back to the flight record that
    // filled them (OpenMetrics exemplars).
    TraceContext* trace = TraceContext::Current();
    if (trace != nullptr && trace->id().valid()) {
      histogram_->ObserveExemplar(ms, trace->id().hi, trace->id().lo);
    } else {
      histogram_->Observe(ms);
    }
  }
  if (profiled_) SpanProfiler::ExitFrame(ms);
}

TraceSpan::~TraceSpan() { Stop(); }

int TraceSpan::CurrentDepth() { return g_span_depth; }

}  // namespace obs
}  // namespace midas
