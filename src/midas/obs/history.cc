#include "midas/obs/history.h"

#include <algorithm>
#include <cmath>

#include "midas/obs/json.h"

namespace midas {
namespace obs {

void MetricHistory::Sample(double now_ms, const MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sampled_once_ && now_ms - last_sample_ms_ < config_.min_interval_ms) {
    return;
  }
  sampled_once_ = true;
  last_sample_ms_ = now_ms;
  ++samples_taken_;
  auto push = [this, now_ms](const std::string& name, double value) {
    Series& s = series_[name];
    s.points.emplace_back(now_ms, value);
    while (s.points.size() > config_.capacity) s.points.pop_front();
  };
  for (const Counter* c : registry.counters()) {
    push(c->name(), static_cast<double>(c->Value()));
  }
  for (const Gauge* g : registry.gauges()) push(g->name(), g->Value());
  for (const Histogram* h : registry.histograms()) {
    push(h->name() + "_count", static_cast<double>(h->Count()));
    push(h->name() + "_sum", h->Sum());
  }
}

std::vector<std::string> MetricHistory::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

size_t MetricHistory::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

bool MetricHistory::Query(const std::string& metric, double now_ms,
                          double window_ms, size_t buckets,
                          std::vector<Bucket>* out) const {
  out->clear();
  if (buckets == 0 || window_ms <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(metric);
  if (it == series_.end()) return false;
  const double start = now_ms - window_ms;
  const double width = window_ms / static_cast<double>(buckets);
  std::vector<std::vector<double>> binned(buckets);
  for (const auto& [t, v] : it->second.points) {
    if (t < start || t > now_ms) continue;
    size_t b = static_cast<size_t>((t - start) / width);
    if (b >= buckets) b = buckets - 1;
    binned[b].push_back(v);
  }
  for (size_t b = 0; b < buckets; ++b) {
    Bucket bucket;
    bucket.t_ms = start + width * static_cast<double>(b);
    bucket.count = binned[b].size();
    if (!binned[b].empty()) {
      std::sort(binned[b].begin(), binned[b].end());
      double sum = 0.0;
      for (double v : binned[b]) sum += v;
      bucket.min = binned[b].front();
      bucket.max = binned[b].back();
      bucket.mean = sum / static_cast<double>(binned[b].size());
      size_t rank = static_cast<size_t>(
          std::ceil(0.99 * static_cast<double>(binned[b].size())));
      if (rank > 0) --rank;
      bucket.p99 = binned[b][rank];
    }
    out->push_back(bucket);
  }
  return true;
}

std::string MetricHistory::QueryJson(const std::string& metric, double now_ms,
                                     double window_ms, size_t buckets) const {
  std::vector<Bucket> binned;
  if (metric.empty() || !Query(metric, now_ms, window_ms, buckets, &binned)) {
    JsonWriter w;
    w.BeginObject();
    w.Key("error").Value(metric.empty() ? "missing ?metric= parameter"
                                        : "unknown metric: " + metric);
    w.Key("metrics").BeginArray();
    for (const std::string& name : Names()) w.Value(name);
    w.EndArray();
    w.EndObject();
    return w.str();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("metric").Value(metric);
  w.Key("window_ms").Value(window_ms);
  w.Key("buckets").Value(static_cast<uint64_t>(buckets));
  w.Key("samples_taken").Value(static_cast<uint64_t>(samples_taken()));
  w.Key("points").BeginArray();
  for (const Bucket& b : binned) {
    if (b.count == 0) continue;  // sparse output: empty buckets carry nothing
    w.BeginObject();
    w.Key("t_ms").Value(b.t_ms);
    w.Key("count").Value(b.count);
    w.Key("min").Value(b.min);
    w.Key("mean").Value(b.mean);
    w.Key("max").Value(b.max);
    w.Key("p99").Value(b.p99);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void BurnRateAlerter::Observe(Rule* rule, double now_ms, bool bad) {
  rule->events.emplace_back(now_ms, bad);
  const double cutoff = now_ms - config_.slow_window_ms;
  while (!rule->events.empty() && rule->events.front().first < cutoff) {
    rule->events.pop_front();
  }
}

void BurnRateAlerter::ObserveRound(double now_ms, bool slo_violation) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Observe(&round_slo_, now_ms, slo_violation);
}

void BurnRateAlerter::ObserveQuality(double now_ms, double scov,
                                     double lcov) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.scov_floor > 0.0) {
    Observe(&scov_floor_, now_ms, scov < config_.scov_floor);
  }
  if (config_.lcov_floor > 0.0) {
    Observe(&lcov_floor_, now_ms, lcov < config_.lcov_floor);
  }
}

void BurnRateAlerter::RateIn(const Rule& rule, double now_ms,
                             double window_ms, double* rate,
                             uint64_t* total) const {
  uint64_t bad = 0, count = 0;
  const double cutoff = now_ms - window_ms;
  for (const auto& [t, is_bad] : rule.events) {
    if (t < cutoff || t > now_ms) continue;
    ++count;
    if (is_bad) ++bad;
  }
  *total = count;
  *rate = count == 0 ? 0.0
                     : static_cast<double>(bad) / static_cast<double>(count);
}

std::vector<BurnRateAlerter::Transition> BurnRateAlerter::TickLocked(
    double now_ms) {
  std::vector<Transition> transitions;
  Rule* rules[] = {&round_slo_, &scov_floor_, &lcov_floor_};
  scov_floor_.enabled = config_.scov_floor > 0.0;
  lcov_floor_.enabled = config_.lcov_floor > 0.0;
  for (Rule* rule : rules) {
    if (!rule->enabled) continue;
    double fast_rate = 0.0, slow_rate = 0.0;
    uint64_t fast_total = 0, slow_total = 0;
    RateIn(*rule, now_ms, config_.fast_window_ms, &fast_rate, &fast_total);
    RateIn(*rule, now_ms, config_.slow_window_ms, &slow_rate, &slow_total);
    bool next = rule->firing;
    if (!rule->firing) {
      // Fire only when both windows burn: the fast window proves it is
      // happening now, the slow window proves it is not a blip.
      next = fast_total >= config_.min_events &&
             fast_rate >= config_.fast_burn && slow_rate >= config_.slow_burn;
    } else {
      // Clear as soon as the fast window recovers.
      next = !(fast_rate < config_.fast_burn);
    }
    if (next != rule->firing) {
      rule->firing = next;
      if (next) {
        rule->since_ms = now_ms;
        ++rule->fired_total;
      }
      Transition t;
      t.alert = rule->name;
      t.firing = next;
      t.at_ms = now_ms;
      t.fast_rate = fast_rate;
      t.slow_rate = slow_rate;
      transitions.push_back(std::move(t));
    }
  }
  return transitions;
}

std::vector<BurnRateAlerter::Transition> BurnRateAlerter::Tick(
    double now_ms) {
  if (!config_.enabled) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return TickLocked(now_ms);
}

std::vector<BurnRateAlerter::AlertState> BurnRateAlerter::States(
    double now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertState> states;
  const Rule* rules[] = {&round_slo_, &scov_floor_, &lcov_floor_};
  const bool enabled[] = {config_.enabled,
                          config_.enabled && config_.scov_floor > 0.0,
                          config_.enabled && config_.lcov_floor > 0.0};
  for (size_t i = 0; i < 3; ++i) {
    AlertState s;
    s.name = rules[i]->name;
    s.enabled = enabled[i];
    s.firing = rules[i]->firing;
    s.since_ms = rules[i]->since_ms;
    s.fired_total = rules[i]->fired_total;
    RateIn(*rules[i], now_ms, config_.fast_window_ms, &s.fast_rate,
           &s.fast_events);
    RateIn(*rules[i], now_ms, config_.slow_window_ms, &s.slow_rate,
           &s.slow_events);
    states.push_back(std::move(s));
  }
  return states;
}

std::string BurnRateAlerter::ToJson(double now_ms) const {
  std::vector<AlertState> states = States(now_ms);
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Value(config_.enabled);
  w.Key("fast_window_ms").Value(config_.fast_window_ms);
  w.Key("slow_window_ms").Value(config_.slow_window_ms);
  w.Key("fast_burn").Value(config_.fast_burn);
  w.Key("slow_burn").Value(config_.slow_burn);
  bool any_firing = false;
  for (const AlertState& s : states) any_firing |= s.enabled && s.firing;
  w.Key("firing").Value(any_firing);
  w.Key("alerts").BeginArray();
  for (const AlertState& s : states) {
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("enabled").Value(s.enabled);
    w.Key("firing").Value(s.firing);
    if (s.firing) w.Key("since_ms").Value(s.since_ms);
    w.Key("fast_rate").Value(s.fast_rate);
    w.Key("slow_rate").Value(s.slow_rate);
    w.Key("fast_events").Value(s.fast_events);
    w.Key("slow_events").Value(s.slow_events);
    w.Key("fired_total").Value(s.fired_total);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace obs
}  // namespace midas
