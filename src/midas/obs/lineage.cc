#include "midas/obs/lineage.h"

#include <algorithm>
#include <sstream>

#include "midas/obs/json.h"

namespace midas {
namespace obs {

namespace {

/// Space-free token for one double, shortest round-trip form. Event lines
/// are whitespace-delimited, so the token must never contain spaces —
/// FormatDouble's quoted non-finite forms are mapped to bare words.
std::string Num(double v) {
  std::string s = JsonWriter::FormatDouble(v);
  if (!s.empty() && s.front() == '"') s = s.substr(1, s.size() - 2);
  return s;
}

bool ParseNum(std::istream& in, double* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  if (tok == "NaN" || tok == "Inf" || tok == "-Inf") {
    *out = 0.0;  // never produced by finite metrics; keep the line parseable
    return true;
  }
  std::istringstream num(tok);
  return static_cast<bool>(num >> *out);
}

}  // namespace

const char* LineageEventKindName(LineageEventKind kind) {
  switch (kind) {
    case LineageEventKind::kInitial:
      return "initial";
    case LineageEventKind::kSwapIn:
      return "swap_in";
    case LineageEventKind::kSwapOut:
      return "swap_out";
    case LineageEventKind::kRescore:
      return "rescore";
    case LineageEventKind::kRemoved:
      return "removed";
    case LineageEventKind::kRestored:
      return "restored";
  }
  return "unknown";
}

std::string DominantTerm(const SwapRationale& r) {
  if (r.random) return "random";
  const double coverage =
      (r.coverage_gain - r.coverage_loss) / std::max(1.0, r.coverage_loss);
  const double diversity = r.div_before > 0.0
                               ? (r.div_after - r.div_before) / r.div_before
                               : r.div_after - r.div_before;
  const double label_coverage =
      r.lcov_before > 0.0 ? (r.lcov_after - r.lcov_before) / r.lcov_before
                          : r.lcov_after - r.lcov_before;
  const double cognitive_load =
      r.cog_before > 0.0 ? (r.cog_before - r.cog_after) / r.cog_before
                         : r.cog_before - r.cog_after;
  // Fixed evaluation order; strict > keeps the earlier term on ties, so the
  // classification is deterministic.
  const char* best = "coverage";
  double best_gain = coverage;
  if (diversity > best_gain) best = "diversity", best_gain = diversity;
  if (label_coverage > best_gain) {
    best = "label_coverage", best_gain = label_coverage;
  }
  if (cognitive_load > best_gain) best = "cognitive_load";
  return best;
}

std::string LineageEvent::Serialize() const {
  std::ostringstream out;
  out << "E " << static_cast<int>(kind) << ' ' << seq << ' ' << pattern << ' '
      << (has_other ? 1 : 0) << ' ' << other << ' ' << Num(scov) << ' '
      << Num(lcov) << ' ' << Num(div) << ' ' << Num(cog) << ' ' << Num(score)
      << ' ' << (trace_id.empty() ? "-" : trace_id);
  if (has_rationale) {
    const SwapRationale& r = rationale;
    out << " R " << Num(r.winner_score) << ' ' << Num(r.loser_score) << ' '
        << Num(r.margin) << ' ' << Num(r.coverage_gain) << ' '
        << Num(r.coverage_loss) << ' ' << Num(r.kappa) << ' '
        << Num(r.div_before) << ' ' << Num(r.div_after) << ' '
        << Num(r.cog_before) << ' ' << Num(r.cog_after) << ' '
        << Num(r.lcov_before) << ' ' << Num(r.lcov_after) << ' '
        << (r.dominant_term.empty() ? "-" : r.dominant_term) << ' '
        << (r.random ? 1 : 0);
  }
  return out.str();
}

bool LineageEvent::Parse(std::string_view line, LineageEvent* out,
                         std::string* error) {
  std::istringstream in{std::string(line)};
  std::string tag;
  int kind_int = 0, has_other_int = 0;
  *out = LineageEvent();
  if (!(in >> tag >> kind_int >> out->seq >> out->pattern >> has_other_int >>
        out->other) ||
      tag != "E" || kind_int < 0 || kind_int > 5) {
    if (error != nullptr) *error = "malformed lineage event header";
    return false;
  }
  out->kind = static_cast<LineageEventKind>(kind_int);
  out->has_other = has_other_int != 0;
  std::string trace;
  if (!ParseNum(in, &out->scov) || !ParseNum(in, &out->lcov) ||
      !ParseNum(in, &out->div) || !ParseNum(in, &out->cog) ||
      !ParseNum(in, &out->score) || !(in >> trace)) {
    if (error != nullptr) *error = "malformed lineage event metrics";
    return false;
  }
  if (trace != "-") out->trace_id = trace;
  std::string rtag;
  if (in >> rtag) {
    if (rtag != "R") {
      if (error != nullptr) *error = "unexpected lineage event suffix";
      return false;
    }
    SwapRationale& r = out->rationale;
    std::string dominant;
    int random_int = 0;
    if (!ParseNum(in, &r.winner_score) || !ParseNum(in, &r.loser_score) ||
        !ParseNum(in, &r.margin) || !ParseNum(in, &r.coverage_gain) ||
        !ParseNum(in, &r.coverage_loss) || !ParseNum(in, &r.kappa) ||
        !ParseNum(in, &r.div_before) || !ParseNum(in, &r.div_after) ||
        !ParseNum(in, &r.cog_before) || !ParseNum(in, &r.cog_after) ||
        !ParseNum(in, &r.lcov_before) || !ParseNum(in, &r.lcov_after) ||
        !(in >> dominant >> random_int)) {
      if (error != nullptr) *error = "malformed lineage event rationale";
      return false;
    }
    if (dominant != "-") r.dominant_term = dominant;
    r.random = random_int != 0;
    out->has_rationale = true;
  }
  return true;
}

void LineageEvent::ToJson(std::string* out) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("kind").Value(LineageEventKindName(kind));
  w.Key("seq").Value(seq);
  w.Key("pattern").Value(static_cast<uint64_t>(pattern));
  if (has_other) w.Key("other").Value(static_cast<uint64_t>(other));
  w.Key("scov").Value(scov);
  w.Key("lcov").Value(lcov);
  w.Key("div").Value(div);
  w.Key("cog").Value(cog);
  w.Key("score").Value(score);
  if (!trace_id.empty()) w.Key("trace_id").Value(trace_id);
  if (has_rationale) {
    const SwapRationale& r = rationale;
    w.Key("rationale").BeginObject();
    w.Key("winner_score").Value(r.winner_score);
    w.Key("loser_score").Value(r.loser_score);
    w.Key("margin").Value(r.margin);
    w.Key("coverage_gain").Value(r.coverage_gain);
    w.Key("coverage_loss").Value(r.coverage_loss);
    w.Key("kappa").Value(r.kappa);
    w.Key("div_before").Value(r.div_before);
    w.Key("div_after").Value(r.div_after);
    w.Key("cog_before").Value(r.cog_before);
    w.Key("cog_after").Value(r.cog_after);
    w.Key("lcov_before").Value(r.lcov_before);
    w.Key("lcov_after").Value(r.lcov_after);
    w.Key("dominant_term").Value(r.dominant_term);
    w.Key("random").Value(r.random);
    w.EndObject();
  }
  w.EndObject();
  out->append(w.str());
}

const LineageEvent* PatternLineage::birth() const {
  for (const LineageEvent& e : events) {
    if (e.kind != LineageEventKind::kRescore &&
        e.kind != LineageEventKind::kSwapOut &&
        e.kind != LineageEventKind::kRemoved) {
      return &e;
    }
  }
  return nullptr;
}

const LineageEvent* PatternLineage::latest() const {
  return events.empty() ? nullptr : &events.back();
}

void PatternLedger::BeginRound(uint64_t seq) {
  pending_.clear();
  pending_seq_ = seq;
}

void PatternLedger::PendBirth(PatternId id, LineageEventKind kind,
                              PatternId loser, bool has_loser,
                              const SwapRationale* rationale, double scov,
                              double lcov, double div, double cog,
                              double score) {
  LineageEvent e;
  e.kind = kind;
  e.seq = pending_seq_;
  e.pattern = id;
  e.other = loser;
  e.has_other = has_loser;
  if (rationale != nullptr) {
    e.rationale = *rationale;
    e.has_rationale = true;
  }
  e.scov = scov;
  e.lcov = lcov;
  e.div = div;
  e.cog = cog;
  e.score = score;
  pending_.push_back(std::move(e));
}

void PatternLedger::PendDeath(PatternId id, PatternId winner, bool has_winner,
                              const SwapRationale* rationale, double scov,
                              double lcov, double div, double cog,
                              double score) {
  LineageEvent e;
  e.kind = LineageEventKind::kSwapOut;
  e.seq = pending_seq_;
  e.pattern = id;
  e.other = winner;
  e.has_other = has_winner;
  if (rationale != nullptr) {
    e.rationale = *rationale;
    e.has_rationale = true;
  }
  e.scov = scov;
  e.lcov = lcov;
  e.div = div;
  e.cog = cog;
  e.score = score;
  pending_.push_back(std::move(e));
}

void PatternLedger::PendRescore(PatternId id, double scov, double lcov,
                                double div, double cog, double score) {
  LineageEvent e;
  e.kind = LineageEventKind::kRescore;
  e.seq = pending_seq_;
  e.pattern = id;
  e.scov = scov;
  e.lcov = lcov;
  e.div = div;
  e.cog = cog;
  e.score = score;
  pending_.push_back(std::move(e));
}

void PatternLedger::StampTrace(const std::string& trace_hex) {
  for (LineageEvent& e : pending_) e.trace_id = trace_hex;
}

std::string PatternLedger::SerializeDelta(PatternId next_pattern_id) const {
  std::ostringstream out;
  out << "delta v1 " << pending_seq_ << ' ' << next_pattern_id << '\n';
  for (const LineageEvent& e : pending_) out << e.Serialize() << '\n';
  return out.str();
}

void PatternLedger::Commit() {
  for (const LineageEvent& e : pending_) Apply(e);
  pending_.clear();
}

void PatternLedger::Abort() { pending_.clear(); }

void PatternLedger::RecordInitial(PatternId id, double scov, double lcov,
                                  double div, double cog, double score) {
  LineageEvent e;
  e.kind = LineageEventKind::kInitial;
  e.seq = 0;
  e.pattern = id;
  e.scov = scov;
  e.lcov = lcov;
  e.div = div;
  e.cog = cog;
  e.score = score;
  Apply(e);
}

void PatternLedger::Reconcile(const PatternSet& panel, uint64_t seq) {
  for (const auto& [id, p] : panel.patterns()) {
    auto it = lineages_.find(id);
    if (it != lineages_.end() && it->second.alive) continue;
    LineageEvent e;
    e.kind = LineageEventKind::kRestored;
    e.seq = seq;
    e.pattern = id;
    e.scov = p.scov;
    e.lcov = p.lcov;
    e.div = p.div;
    e.cog = p.cog;
    e.score = p.score;
    Apply(e);
  }
  std::vector<PatternId> vanished;
  for (const auto& [id, lin] : lineages_) {
    if (lin.alive && panel.Find(id) == nullptr) vanished.push_back(id);
  }
  for (PatternId id : vanished) {
    LineageEvent e;
    e.kind = LineageEventKind::kRemoved;
    e.seq = seq;
    e.pattern = id;
    Apply(e);
  }
}

void PatternLedger::Clear() {
  lineages_.clear();
  pending_.clear();
  pending_seq_ = 0;
  events_applied_ = 0;
  evicted_dead_ = 0;
}

void PatternLedger::Apply(const LineageEvent& event) {
  switch (event.kind) {
    case LineageEventKind::kInitial:
    case LineageEventKind::kSwapIn:
    case LineageEventKind::kRestored: {
      PatternLineage lin;
      lin.id = event.pattern;
      lin.birth_seq = event.seq;
      lin.birth_kind = event.kind;
      lin.alive = true;
      lin.events.push_back(event);
      lineages_[event.pattern] = std::move(lin);
      break;
    }
    case LineageEventKind::kSwapOut:
    case LineageEventKind::kRemoved: {
      auto it = lineages_.find(event.pattern);
      if (it == lineages_.end()) return;  // unknown id: nothing to close
      LineageEvent death = event;
      if (event.kind == LineageEventKind::kSwapOut && event.scov == 0.0) {
        // Death events captured at the swap site carry the loser's final
        // metrics; reconcile-synthesized ones may not — keep the last known.
        const LineageEvent* last = it->second.latest();
        if (last != nullptr) {
          death.scov = last->scov;
          death.lcov = last->lcov;
          death.div = last->div;
          death.cog = last->cog;
          death.score = last->score;
        }
      }
      it->second.alive = false;
      it->second.death_seq = event.seq;
      it->second.events.push_back(std::move(death));
      // Enforce the dead-lineage cap: evict the oldest death first.
      size_t dead = 0;
      for (const auto& [id, lin] : lineages_) {
        if (!lin.alive) ++dead;
      }
      while (dead > config_.max_dead_patterns) {
        auto victim = lineages_.end();
        for (auto lt = lineages_.begin(); lt != lineages_.end(); ++lt) {
          if (lt->second.alive) continue;
          if (victim == lineages_.end() ||
              lt->second.death_seq < victim->second.death_seq) {
            victim = lt;
          }
        }
        if (victim == lineages_.end()) break;
        lineages_.erase(victim);
        ++evicted_dead_;
        --dead;
      }
      break;
    }
    case LineageEventKind::kRescore: {
      auto it = lineages_.find(event.pattern);
      if (it == lineages_.end() || !it->second.alive) return;
      PatternLineage& lin = it->second;
      ++lin.rescores;
      lin.cumulative_scov += event.scov;
      lin.events.push_back(event);
      size_t rescores_held = 0;
      for (const LineageEvent& e : lin.events) {
        if (e.kind == LineageEventKind::kRescore) ++rescores_held;
      }
      if (rescores_held > config_.max_rescores_per_pattern) {
        for (auto et = lin.events.begin(); et != lin.events.end(); ++et) {
          if (et->kind == LineageEventKind::kRescore) {
            lin.events.erase(et);
            ++lin.dropped_rescores;
            break;
          }
        }
      }
      break;
    }
  }
  ++events_applied_;
}

std::string PatternLedger::Serialize() const {
  std::ostringstream out;
  out << "ledger v1 " << events_applied_ << ' ' << evicted_dead_ << '\n';
  for (const auto& [id, lin] : lineages_) {
    out << "P " << id << ' ' << (lin.alive ? 1 : 0) << ' ' << lin.birth_seq
        << ' ' << static_cast<int>(lin.birth_kind) << ' ' << lin.death_seq
        << ' ' << lin.rescores << ' ' << lin.dropped_rescores << ' '
        << Num(lin.cumulative_scov) << '\n';
    for (const LineageEvent& e : lin.events) out << e.Serialize() << '\n';
  }
  return out.str();
}

bool PatternLedger::Deserialize(std::string_view text, std::string* error) {
  PatternLedger fresh(config_);
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line)) {
    if (error != nullptr) *error = "empty lineage payload";
    return false;
  }
  {
    std::istringstream header(line);
    std::string tag, version;
    if (!(header >> tag >> version >> fresh.events_applied_ >>
          fresh.evicted_dead_) ||
        tag != "ledger" || version != "v1") {
      if (error != nullptr) *error = "malformed lineage header: " + line;
      return false;
    }
  }
  PatternLineage* current = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'P') {
      std::istringstream header(line);
      std::string tag;
      PatternLineage lin;
      int alive_int = 0, kind_int = 0;
      if (!(header >> tag >> lin.id >> alive_int >> lin.birth_seq >>
            kind_int >> lin.death_seq >> lin.rescores >>
            lin.dropped_rescores) ||
          !ParseNum(header, &lin.cumulative_scov) || kind_int < 0 ||
          kind_int > 5) {
        if (error != nullptr) *error = "malformed pattern header: " + line;
        return false;
      }
      lin.alive = alive_int != 0;
      lin.birth_kind = static_cast<LineageEventKind>(kind_int);
      current = &fresh.lineages_[lin.id];
      *current = std::move(lin);
    } else if (line[0] == 'E') {
      if (current == nullptr) {
        if (error != nullptr) *error = "event before pattern header";
        return false;
      }
      LineageEvent e;
      if (!LineageEvent::Parse(line, &e, error)) return false;
      current->events.push_back(std::move(e));
    } else {
      if (error != nullptr) *error = "unknown lineage line: " + line;
      return false;
    }
  }
  *this = std::move(fresh);
  return true;
}

bool PatternLedger::ApplyDelta(std::string_view text,
                               PatternId* next_pattern_id,
                               std::string* error) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line)) {
    if (error != nullptr) *error = "empty lineage delta";
    return false;
  }
  uint64_t seq = 0;
  uint64_t next_id = 0;
  {
    std::istringstream header(line);
    std::string tag, version;
    if (!(header >> tag >> version >> seq >> next_id) || tag != "delta" ||
        version != "v1") {
      if (error != nullptr) *error = "malformed lineage delta header: " + line;
      return false;
    }
  }
  // Parse everything before applying anything: a torn delta (CRC-guarded in
  // the journal, so only possible via corruption) must not half-apply.
  std::vector<LineageEvent> events;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LineageEvent e;
    if (!LineageEvent::Parse(line, &e, error)) return false;
    events.push_back(std::move(e));
  }
  for (const LineageEvent& e : events) Apply(e);
  if (next_pattern_id != nullptr) {
    *next_pattern_id = static_cast<PatternId>(next_id);
  }
  return true;
}

const PatternLineage* PatternLedger::Find(PatternId id) const {
  auto it = lineages_.find(id);
  return it == lineages_.end() ? nullptr : &it->second;
}

size_t PatternLedger::live_count() const {
  size_t live = 0;
  for (const auto& [id, lin] : lineages_) {
    if (lin.alive) ++live;
  }
  return live;
}

std::vector<LineageEvent> PatternLedger::SwapInsAt(uint64_t seq) const {
  std::vector<LineageEvent> out;
  for (const auto& [id, lin] : lineages_) {
    for (const LineageEvent& e : lin.events) {
      if (e.seq == seq && e.kind == LineageEventKind::kSwapIn) {
        out.push_back(e);
      }
    }
  }
  return out;
}

std::string PatternLedger::PanelJson(uint64_t current_seq) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("round_seq").Value(current_seq);
  w.Key("live").Value(static_cast<uint64_t>(live_count()));
  w.Key("dead").Value(static_cast<uint64_t>(lineages_.size() - live_count()));
  w.Key("events_applied").Value(events_applied_);
  w.Key("evicted_dead").Value(evicted_dead_);
  w.Key("patterns").BeginArray();
  std::string body = w.str();
  bool first = true;
  for (const auto& [id, lin] : lineages_) {
    if (!lin.alive) continue;
    JsonWriter p;
    p.BeginObject();
    p.Key("id").Value(static_cast<uint64_t>(id));
    p.Key("birth_seq").Value(lin.birth_seq);
    p.Key("birth_kind").Value(LineageEventKindName(lin.birth_kind));
    p.Key("age_rounds")
        .Value(current_seq >= lin.birth_seq ? current_seq - lin.birth_seq
                                            : uint64_t{0});
    p.Key("rescores").Value(lin.rescores);
    p.Key("cumulative_scov").Value(lin.cumulative_scov);
    const LineageEvent* last = lin.latest();
    if (last != nullptr) {
      p.Key("scov").Value(last->scov);
      p.Key("score").Value(last->score);
    }
    const LineageEvent* born = lin.birth();
    if (born != nullptr && born->has_rationale) {
      p.Key("displaced").Value(static_cast<uint64_t>(born->other));
      p.Key("margin").Value(born->rationale.margin);
      p.Key("dominant_term").Value(born->rationale.dominant_term);
    }
    p.EndObject();
    if (!first) body += ",";
    body += p.str();
    first = false;
  }
  body += "]}";
  return body;
}

std::string PatternLedger::LineageJson(PatternId id) const {
  const PatternLineage* lin = Find(id);
  if (lin == nullptr) return "";
  JsonWriter w;
  w.BeginObject();
  w.Key("id").Value(static_cast<uint64_t>(id));
  w.Key("alive").Value(lin->alive);
  w.Key("birth_seq").Value(lin->birth_seq);
  w.Key("birth_kind").Value(LineageEventKindName(lin->birth_kind));
  if (!lin->alive) w.Key("death_seq").Value(lin->death_seq);
  w.Key("rescores").Value(lin->rescores);
  w.Key("dropped_rescores").Value(lin->dropped_rescores);
  w.Key("cumulative_scov").Value(lin->cumulative_scov);
  std::string body = w.str();
  body += ",\"events\":[";
  for (size_t i = 0; i < lin->events.size(); ++i) {
    if (i > 0) body += ",";
    lin->events[i].ToJson(&body);
  }
  body += "]}";
  return body;
}

}  // namespace obs
}  // namespace midas
