#ifndef MIDAS_OBS_FLIGHT_H_
#define MIDAS_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "midas/obs/trace.h"

namespace midas {
namespace obs {

class JsonWriter;
class TelemetryServer;

/// Complete causal record of one update batch's flight through the serving
/// host: admission, queue wait, retry/recovery attempts, the per-phase cost
/// breakdown of the maintenance round that applied it, the kernel work it
/// was charged for (budget steps, cache traffic), and the quality-SLI deltas
/// it caused. Immutable once published to the FlightRecorder.
struct FlightRecord {
  std::string trace_id;             ///< 32-hex TraceId
  /// Traces of batches coalesced into this round beyond the first — the
  /// merged parents' causal links.
  std::vector<std::string> links;
  uint64_t seq = 0;                 ///< engine round seq (0 = never applied)
  uint64_t ticket = 0;              ///< queue admission order
  size_t additions = 0;             ///< |Δ⁺| after canonicalization
  size_t deletions = 0;             ///< |Δ⁻| after canonicalization
  size_t coalesced_parts = 0;       ///< batches merged beyond the first

  /// Admission verdict: "admitted", "coalesced", "rejected_validation",
  /// "rejected_overflow", "writer_rejected" or "dead_drop".
  std::string admission = "admitted";
  double queue_wait_ms = 0.0;       ///< Push -> writer Pop

  int attempts = 0;                 ///< ApplyUpdate tries
  int retries = 0;                  ///< attempts beyond the first
  bool recovered = false;           ///< in-process recovery ran for it
  /// "ok", "rejected_validation", "rejected_overflow", "writer_rejected",
  /// "quarantined" or "dead_drop".
  std::string outcome = "ok";
  std::string error;                ///< last failure message (retried rounds)

  double total_ms = 0.0;            ///< committed round's wall time
  /// Per-phase (name, wall ms) in MaintenanceStats order. Phases partition
  /// the round (they never nest), so wall == self per phase; the round's own
  /// self time is total_ms minus their sum.
  std::vector<std::pair<std::string, double>> phase_ms;

  uint64_t budget_steps = 0;        ///< ExecBudget steps the round consumed
  bool truncated = false;           ///< budget exhausted mid-round
  std::string degrade_reason = "none";  ///< ExecBudget::CauseName spelling
  /// Incremental-view outcome of the round's metric refresh: "delta",
  /// "rescan" or "off" (MaintenanceStats::ViewStrategy), plus the per-path
  /// pattern-row split — a delta round that suddenly rescans shows up here.
  std::string view_strategy = "off";
  int64_t view_delta_rows = 0;
  int64_t view_rescan_rows = 0;
  uint64_t cache_hits = 0;          ///< ComputeCache lookups, this trace
  uint64_t cache_misses = 0;

  bool slo_violation = false;       ///< total_ms exceeded the configured SLO
  bool drift_coincident = false;    ///< quality drift active after the round
  /// Quality-SLI deltas (post-round minus pre-round panel).
  double scov_delta = 0.0;
  double lcov_delta = 0.0;
  double div_delta = 0.0;
  double cog_delta = 0.0;

  /// Name and wall time of the most expensive phase ("" when no round ran).
  std::string SlowestPhase(double* ms = nullptr) const;

  /// Approximate resident bytes of this record (strings + vectors).
  size_t ApproxBytes() const;

  /// Full single-line JSON object (the /traces/<id> body).
  std::string ToJson() const;
  /// Compact summary row (trace_id, seq, outcome, total_ms, queue_wait_ms,
  /// slowest phase, flags) — the /traces listing and /statusz table entry.
  void AppendSummary(JsonWriter& w) const;

  /// Folded-stacks exposition of this record's phase tree (one
  /// `midas_round;<phase> <self-microseconds>` line per phase plus the
  /// round's own self time) — flamegraph one bad batch in isolation.
  std::string ToFolded() const;
};

struct FlightRecorderConfig {
  size_t capacity = 256;            ///< recent ring (all recorded traces)
  size_t retained_capacity = 64;    ///< ring of always-kept "interesting" ones
  /// Round-latency SLO in ms; total_ms above it flags slo_violation and
  /// makes the record retention-interesting. 0 disables the SLO flag.
  double slo_ms = 50.0;
  /// Tail-based sampling of boring records: every Nth uninteresting record
  /// enters the recent ring, the rest only bump a counter. 1 = keep all
  /// (the default); interesting records are always recorded regardless.
  uint64_t sample_every = 1;
};

/// Fixed-size lock-free ring of completed FlightRecords.
///
/// Writers (the host writer thread, plus Submit callers recording rejected
/// batches) publish immutable records with an atomic slot store; readers
/// (telemetry handlers paging /traces) load slots wait-free — the same
/// epoch-pointer idiom as PanelSnapshot, so a scrape never blocks a round.
///
/// Tail-based retention: records that matter for debugging (SLO violations,
/// degraded/truncated rounds, retries, recoveries, quarantines, rejects,
/// drift-coincident rounds) are additionally written to a separate retained
/// ring, so a burst of healthy traffic cannot evict the evidence of the one
/// bad batch. Boring records can be sampled down (sample_every).
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = FlightRecorderConfig());

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Publishes one completed record (tail-based retention + sampling).
  void Record(std::shared_ptr<const FlightRecord> record);

  /// The record of `trace_id_hex` (newest wins on id reuse); nullptr when
  /// evicted or never recorded.
  std::shared_ptr<const FlightRecord> Find(std::string_view trace_id_hex) const;

  /// Every currently retained record, newest first, deduplicated by trace id
  /// across the two rings.
  std::vector<std::shared_ptr<const FlightRecord>> Snapshot() const;

  /// True when the record trips tail-based retention (always kept).
  static bool Interesting(const FlightRecord& record);

  const FlightRecorderConfig& config() const { return config_; }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Boring records dropped by sampling (never entered any ring).
  uint64_t sampled_out() const {
    return sampled_out_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes of everything currently held in both rings
  /// — the memory watchdog's "flight_recorder" component. Wait-free (loads
  /// the same atomic slots the telemetry readers do).
  size_t ApproxBytes() const;

 private:
  using Slot = std::atomic<std::shared_ptr<const FlightRecord>>;

  FlightRecorderConfig config_;
  std::vector<Slot> recent_;
  std::vector<Slot> retained_;
  std::atomic<uint64_t> recent_next_{0};
  std::atomic<uint64_t> retained_next_{0};
  std::atomic<uint64_t> boring_seen_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> sampled_out_{0};
};

/// Registers `/traces` (JSON listing, `?n=` caps the rows) and `/traces/<id>`
/// (full record; `?fmt=folded` for the flamegraph exposition) on a telemetry
/// server. `recorder` must outlive the server; handlers only touch the
/// recorder's lock-free rings.
void InstallTraceRoutes(TelemetryServer* server, const FlightRecorder* recorder);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_FLIGHT_H_
