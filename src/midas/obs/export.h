#ifndef MIDAS_OBS_EXPORT_H_
#define MIDAS_OBS_EXPORT_H_

#include <string>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// Prometheus text exposition (version 0.0.4): `# TYPE` headers, counters
/// and gauges as plain samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Suitable for a /metrics endpoint or for the
/// text report appendix RenderEngineReport produces.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Machine-readable JSON snapshot:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": bound-or-"+Inf",
///                                       "count": cumulative}, ...]}, ...}}
/// Bench harnesses emit this so CI and dashboards can parse per-phase
/// breakdowns mechanically.
std::string ExportJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_EXPORT_H_
