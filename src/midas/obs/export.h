#ifndef MIDAS_OBS_EXPORT_H_
#define MIDAS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// The two text exposition dialects /metrics negotiates via Accept.
/// kPrometheus0_0_4 (`text/plain; version=0.0.4`) predates exemplars — a
/// conforming parser treats ` # {...}` suffixes as garbage, so they are
/// stripped. kOpenMetrics (`application/openmetrics-text`) keeps the
/// exemplar suffixes and terminates the body with the mandatory `# EOF`.
enum class MetricsTextFormat {
  kPrometheus0_0_4,
  kOpenMetrics,
};

/// Content-Type header value for a format.
const char* MetricsContentType(MetricsTextFormat format);

/// Prometheus text exposition: `# TYPE` headers, counters and gauges as
/// plain samples, histograms as cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`. Suitable for a /metrics endpoint or for the text report
/// appendix RenderEngineReport produces. The single-argument overload keeps
/// the historical default of the 0.0.4 dialect (no exemplars).
std::string ExportPrometheus(const MetricsRegistry& registry,
                             MetricsTextFormat format);
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Maps an arbitrary string onto the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid character becomes '_', and a
/// leading digit gets a '_' prefix. Empty input yields "_".
std::string SanitizeMetricName(std::string_view name);

/// Escapes a label value for the text exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// Machine-readable JSON snapshot:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": bound-or-"+Inf",
///                                       "count": cumulative}, ...]}, ...}}
/// Bench harnesses emit this so CI and dashboards can parse per-phase
/// breakdowns mechanically.
std::string ExportJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_EXPORT_H_
