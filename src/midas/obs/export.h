#ifndef MIDAS_OBS_EXPORT_H_
#define MIDAS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// Prometheus text exposition (version 0.0.4): `# TYPE` headers, counters
/// and gauges as plain samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Suitable for a /metrics endpoint or for the
/// text report appendix RenderEngineReport produces.
std::string ExportPrometheus(const MetricsRegistry& registry);

/// Maps an arbitrary string onto the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid character becomes '_', and a
/// leading digit gets a '_' prefix. Empty input yields "_".
std::string SanitizeMetricName(std::string_view name);

/// Escapes a label value for the text exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string EscapeLabelValue(std::string_view value);

/// Machine-readable JSON snapshot:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": n, "sum": s,
///                          "buckets": [{"le": bound-or-"+Inf",
///                                       "count": cumulative}, ...]}, ...}}
/// Bench harnesses emit this so CI and dashboards can parse per-phase
/// breakdowns mechanically.
std::string ExportJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_EXPORT_H_
