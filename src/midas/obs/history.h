#ifndef MIDAS_OBS_HISTORY_H_
#define MIDAS_OBS_HISTORY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {

/// In-process metric history + multi-window burn-rate SLO alerting.
///
/// `MetricHistory` is the "how has this trended over the last hour"
/// answer without an external Prometheus: a ring-buffer time series per
/// metric, sampled from the whole `MetricsRegistry` on the writer's idle
/// tick and served by /historyz with min/mean/max/p99 downsampling.
///
/// `BurnRateAlerter` layers SRE-style multi-window burn-rate alerts on
/// top: an alert fires when BOTH a fast (default 5m) and a slow (default
/// 1h) window exceed their bad-event-rate thresholds, and clears as soon
/// as the fast window recovers. All methods take the current time as a
/// parameter (virtual time), so seeded drills are deterministic.

struct MetricHistoryConfig {
  size_t capacity = 600;         ///< samples retained per series
  double min_interval_ms = 200;  ///< samples arriving faster are dropped
};

class MetricHistory {
 public:
  MetricHistory() = default;
  explicit MetricHistory(const MetricHistoryConfig& config)
      : config_(config) {}

  /// Appends one sample of every counter and gauge (plus histogram _count
  /// and _sum as synthetic series) at virtual time `now_ms`. Thread-safe.
  void Sample(double now_ms, const MetricsRegistry& registry);

  std::vector<std::string> Names() const;
  size_t samples_taken() const;

  struct Bucket {
    double t_ms = 0.0;  ///< bucket start (relative to the window)
    uint64_t count = 0;
    double min = 0.0, mean = 0.0, max = 0.0, p99 = 0.0;
  };

  /// Downsamples the series' last `window_ms` into at most `buckets`
  /// equal-width buckets. Returns false when the metric has no series.
  bool Query(const std::string& metric, double now_ms, double window_ms,
             size_t buckets, std::vector<Bucket>* out) const;

  /// The /historyz body. Unknown metric (or empty name) yields
  /// {"error":…,"metrics":[names…]} so the endpoint is self-describing.
  std::string QueryJson(const std::string& metric, double now_ms,
                        double window_ms, size_t buckets) const;

 private:
  struct Series {
    std::deque<std::pair<double, double>> points;  // (t_ms, value)
  };

  MetricHistoryConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  double last_sample_ms_ = -1.0;
  bool sampled_once_ = false;
  uint64_t samples_taken_ = 0;
};

struct AlertConfig {
  bool enabled = true;
  double fast_window_ms = 5 * 60 * 1000.0;   ///< 5m burn window
  double slow_window_ms = 60 * 60 * 1000.0;  ///< 1h burn window
  /// Bad-event-rate thresholds per window: the alert fires when the fast
  /// AND slow rates are both at/above their threshold.
  double fast_burn = 0.5;
  double slow_burn = 0.1;
  /// Minimum events inside the fast window before it may fire (a single
  /// bad round must not page).
  size_t min_events = 3;
  /// Quality-SLI floors: a round whose scov/lcov lands below the floor is
  /// a bad event for the corresponding alert. <= 0 disables the alert.
  double scov_floor = 0.0;
  double lcov_floor = 0.0;
};

class BurnRateAlerter {
 public:
  BurnRateAlerter() = default;
  explicit BurnRateAlerter(const AlertConfig& config) : config_(config) {}

  /// One committed maintenance round; `slo_violation` marks it bad for the
  /// round_slo_burn alert.
  void ObserveRound(double now_ms, bool slo_violation);
  /// The round's quality SLIs, tested against the configured floors.
  void ObserveQuality(double now_ms, double scov, double lcov);

  struct Transition {
    std::string alert;
    bool firing = false;  ///< true = fired, false = cleared
    double at_ms = 0.0;
    double fast_rate = 0.0, slow_rate = 0.0;
  };

  /// Re-evaluates every alert at `now_ms`; returns state changes (for the
  /// alert_event JSONL and the midas_alert_* gauges). Thread-safe.
  std::vector<Transition> Tick(double now_ms);

  struct AlertState {
    std::string name;
    bool enabled = false;
    bool firing = false;
    double since_ms = 0.0;  ///< when the current firing started
    double fast_rate = 0.0, slow_rate = 0.0;
    uint64_t fast_events = 0, slow_events = 0;
    uint64_t fired_total = 0;
  };

  std::vector<AlertState> States(double now_ms) const;
  /// The /alertz body.
  std::string ToJson(double now_ms) const;

  const AlertConfig& config() const { return config_; }

 private:
  struct Rule {
    explicit Rule(std::string rule_name) : name(std::move(rule_name)) {}
    std::string name;
    bool enabled = true;
    std::deque<std::pair<double, bool>> events;  // (t_ms, bad)
    bool firing = false;
    double since_ms = 0.0;
    uint64_t fired_total = 0;
  };

  void Observe(Rule* rule, double now_ms, bool bad);
  void RateIn(const Rule& rule, double now_ms, double window_ms, double* rate,
              uint64_t* total) const;
  std::vector<Transition> TickLocked(double now_ms);

  AlertConfig config_;
  mutable std::mutex mu_;
  Rule round_slo_{"round_slo_burn"};
  Rule scov_floor_{"quality_scov_floor"};
  Rule lcov_floor_{"quality_lcov_floor"};
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_HISTORY_H_
