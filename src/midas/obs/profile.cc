#include "midas/obs/profile.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <iomanip>

namespace midas {
namespace obs {

namespace {

/// One live span on this thread: its name plus the inclusive wall time of
/// the child spans that already completed directly underneath it.
struct Frame {
  std::string name;
  double child_ms = 0.0;
};

thread_local std::vector<Frame> t_frames;

/// Path prefix inherited from the thread that spawned this one (TaskPool
/// workers); empty on ordinary threads.
thread_local std::string t_prefix;

std::string JoinPath(const std::vector<Frame>& frames) {
  std::string path = t_prefix;
  for (const Frame& f : frames) {
    if (!path.empty()) path += ';';
    path += f.name;
  }
  return path;
}

}  // namespace

void SpanProfiler::EnterFrame(std::string name) {
  t_frames.push_back(Frame{std::move(name), 0.0});
}

void SpanProfiler::ExitFrame(double elapsed_ms) {
  if (t_frames.empty()) return;  // unmatched exit; drop rather than crash
  Frame done = std::move(t_frames.back());
  t_frames.pop_back();
  if (!t_frames.empty()) t_frames.back().child_ms += elapsed_ms;
  std::string path = JoinPath(t_frames);
  if (!path.empty()) path += ';';
  path += done.name;
  // A Pause()d parent can measure less unpaused time than its children's
  // wall time; clamp instead of reporting negative self time.
  double self_ms = std::max(0.0, elapsed_ms - done.child_ms);
  Current().Record(path, elapsed_ms, self_ms);
}

size_t SpanProfiler::FrameDepth() { return t_frames.size(); }

std::string SpanProfiler::CurrentPath() { return JoinPath(t_frames); }

std::string SpanProfiler::SetInheritedPrefix(std::string prefix) {
  std::string prev = std::move(t_prefix);
  t_prefix = std::move(prefix);
  return prev;
}

void SpanProfiler::Record(const std::string& path, double total_ms,
                          double self_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PathStats& s = tree_[path];
  ++s.count;
  s.total_ms += total_ms;
  s.self_ms += self_ms;
}

void SpanProfiler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tree_.clear();
}

size_t SpanProfiler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tree_.size();
}

std::vector<std::pair<std::string, SpanProfiler::PathStats>>
SpanProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {tree_.begin(), tree_.end()};
}

std::string SpanProfiler::ExportFolded() const {
  std::ostringstream out;
  for (const auto& [path, s] : Snapshot()) {
    // flamegraph.pl wants integral sample weights; microseconds keep three
    // decimal places of the millisecond readings.
    out << path << ' '
        << static_cast<uint64_t>(std::llround(s.self_ms * 1000.0)) << '\n';
  }
  return out.str();
}

std::string SpanProfiler::ExportTopTable(size_t top_n) const {
  std::vector<std::pair<std::string, PathStats>> rows = Snapshot();
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ms != b.second.self_ms) {
      return a.second.self_ms > b.second.self_ms;
    }
    return a.first < b.first;
  });
  if (top_n > 0 && rows.size() > top_n) rows.resize(top_n);

  size_t width = 4;
  for (const auto& [path, s] : rows) width = std::max(width, path.size());
  std::ostringstream out;
  out << std::left << std::setw(static_cast<int>(width) + 2) << "path"
      << std::right << std::setw(10) << "count" << std::setw(12) << "total_ms"
      << std::setw(12) << "self_ms" << std::setw(12) << "mean_ms" << '\n';
  out << std::fixed << std::setprecision(3);
  for (const auto& [path, s] : rows) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << path
        << std::right << std::setw(10) << s.count << std::setw(12)
        << s.total_ms << std::setw(12) << s.self_ms << std::setw(12)
        << (s.count > 0 ? s.total_ms / static_cast<double>(s.count) : 0.0)
        << '\n';
  }
  return out.str();
}

SpanProfiler& SpanProfiler::Global() {
  static SpanProfiler* global = new SpanProfiler();
  return *global;
}

std::atomic<SpanProfiler*>& SpanProfiler::CurrentSlot() {
  static std::atomic<SpanProfiler*> slot{nullptr};
  return slot;
}

SpanProfiler& SpanProfiler::Current() {
  SpanProfiler* p = CurrentSlot().load(std::memory_order_acquire);
  return p != nullptr ? *p : Global();
}

ScopedSpanProfiler::ScopedSpanProfiler(SpanProfiler& profiler)
    : prev_(SpanProfiler::CurrentSlot().exchange(&profiler,
                                                 std::memory_order_acq_rel)) {}

ScopedSpanProfiler::~ScopedSpanProfiler() {
  SpanProfiler::CurrentSlot().store(prev_, std::memory_order_release);
}

}  // namespace obs
}  // namespace midas
