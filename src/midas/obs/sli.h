#ifndef MIDAS_OBS_SLI_H_
#define MIDAS_OBS_SLI_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace midas {
namespace obs {

/// Pattern-quality service-level indicators: the Definition 2.1 components
/// a deployment must watch to know the panel is still good. One sample per
/// committed maintenance round.
struct QualitySample {
  double scov = 0.0;     ///< subgraph coverage
  double lcov = 0.0;     ///< label coverage
  double div = 0.0;      ///< diversity
  double cog_avg = 0.0;  ///< mean cognitive load
};

/// Drift-detector tuning. Defaults are sized for a serving deployment
/// (hours of rounds); tests shrink baseline/window to a handful of rounds.
struct SliConfig {
  /// Rounds that freeze the baseline distribution. The panel right after
  /// startup is the reference the deployment promised to keep.
  size_t baseline_rounds = 16;
  /// Sliding window of recent rounds compared against the baseline.
  size_t window = 16;
  /// Smallest window that is ever tested (avoids verdicts from 1-2 rounds).
  size_t min_window = 4;
  /// KS significance level: drift needs p < alpha.
  double alpha = 0.01;
  /// Practical-significance guard: besides KS significance, the window
  /// mean must have moved by this fraction of the baseline mean. Keeps
  /// statistically-detectable-but-operationally-meaningless jitter from
  /// paging anyone.
  double min_rel_delta = 0.10;
};

/// Verdict of one Observe() call.
struct DriftFinding {
  bool drifted = false;        ///< any SLI currently violates
  bool newly_drifted = false;  ///< this round flipped healthy -> drifted
  bool recovered = false;      ///< this round flipped drifted -> healthy
  std::string metric;          ///< worst violating SLI ("scov", ...)
  double ks_statistic = 0.0;   ///< KS statistic of the worst SLI
  double p_value = 1.0;        ///< its p-value
  double baseline_mean = 0.0;
  double window_mean = 0.0;
  uint64_t round = 0;          ///< 1-based Observe() count
};

/// Sliding-window two-sample Kolmogorov-Smirnov drift detector over the
/// quality SLIs (the `common/stats.h` KS machinery MIDAS already uses for
/// the swap similarity test, pointed at quality-over-time instead).
///
/// Protocol: feed Observe() once per committed round. The first
/// `baseline_rounds` samples freeze the baseline; afterwards each SLI's
/// recent window is KS-tested against its baseline. A drift verdict needs
/// both statistical significance (p < alpha) and a practical mean shift
/// (min_rel_delta). The status is *current*, not latched: a window that
/// recovers flips the detector (and /healthz) back to healthy, and the
/// transitions are reported so callers can log one event per flip.
///
/// Observe() also exports the `midas_quality_drift_*` gauges/counters to
/// the current MetricsRegistry. Thread-safe (internally locked): the
/// maintenance writer observes while the telemetry server reads.
class QualityDriftDetector {
 public:
  explicit QualityDriftDetector(SliConfig config = SliConfig());

  /// Records one round's quality and re-evaluates drift.
  DriftFinding Observe(const QualitySample& sample);

  /// Current drift status (false until the baseline is frozen and a full
  /// min_window of violating rounds accumulated).
  bool drifted() const;
  /// The last Observe() verdict (default-constructed before any round).
  DriftFinding last_finding() const;
  /// Rounds observed so far.
  uint64_t rounds() const;
  /// True once the baseline is frozen.
  bool baseline_frozen() const;

  /// Drops all samples and status; the next Observe() starts a new
  /// baseline. For re-baselining after an accepted quality regime change.
  void Reset();

  const SliConfig& config() const { return config_; }

 private:
  struct Series {
    const char* name;
    std::vector<double> baseline;
    std::deque<double> window;
  };

  const SliConfig config_;

  mutable std::mutex mu_;
  std::vector<Series> series_;
  uint64_t rounds_ = 0;
  bool drifted_ = false;
  DriftFinding last_;
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_SLI_H_
