#ifndef MIDAS_OBS_METRICS_H_
#define MIDAS_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace midas {
namespace obs {

/// Structured metrics for every MIDAS hot path.
///
/// Naming scheme (docs/observability.md): `midas_<module>_<name>` with
/// `_total` for counters and `_ms` for duration histograms, e.g.
/// `midas_graph_iso_nodes_visited_total`, `midas_maintain_swap_ms`.
///
/// Design notes:
///  - Increments are lock-free relaxed atomics: safe to leave in hot paths.
///  - Handles returned by MetricsRegistry::Get* are stable for the lifetime
///    of the registry; registration itself takes a mutex, so hot code should
///    resolve a handle once (or batch into local counters and flush).
///  - A registry can be disabled: instrumentation sites check `enabled()`
///    once and skip both the clock reads and the registration lookups, so a
///    disabled registry is near-free.
///  - Tests isolate themselves with ScopedMetricsRegistry, which swaps the
///    registry returned by MetricsRegistry::Current().

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (database size, pattern count, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus semantics: bucket i counts
/// observations with value <= bounds[i] (cumulative counts are produced by
/// the exporters, not stored); one implicit +Inf overflow bucket.
///
/// Exemplars (OpenMetrics): each bucket optionally remembers the most recent
/// traced observation that landed in it — the 128-bit trace id of the batch
/// plus the observed value — so a tail-latency bucket links directly to the
/// flight record of the round that filled it. Untraced Observe() calls never
/// touch exemplar state (the hot path stays lock-free); traced observations
/// arrive at round granularity, so the exemplar mutex is cold.
class Histogram {
 public:
  /// Last traced observation of one bucket; `valid` false until a traced
  /// observation lands there (exporters omit the exemplar then).
  struct Exemplar {
    bool valid = false;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    double value = 0.0;
  };

  void Observe(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Observe() plus an exemplar: tags the receiving bucket with the trace id
  /// of the batch this observation belongs to.
  void ObserveExemplar(double value, uint64_t trace_hi, uint64_t trace_lo) {
    const size_t i = BucketIndex(value);
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    exemplars_[i] = Exemplar{true, trace_hi, trace_lo, value};
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Last traced observation of bucket i (valid=false when none landed).
  Exemplar BucketExemplar(size_t i) const {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    return exemplars_[i];
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    std::fill(exemplars_.begin(), exemplars_.end(), Exemplar());
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds)
      : name_(std::move(name)),
        bounds_(std::move(bounds)),
        buckets_(bounds_.size() + 1),
        exemplars_(bounds_.size() + 1) {}

  size_t BucketIndex(double value) const {
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    return i;
  }

  const std::string name_;
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;
};

/// Owns all metrics of one scope (process-wide by default). Get* registers
/// on first use and returns the existing instrument afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` is only consulted on first registration; it must be strictly
  /// increasing. Defaults to LatencyBoundsMs().
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds = {});

  /// Disabling stops instrumentation sites from looking up handles or
  /// reading clocks; existing handles keep working (increments on them are
  /// cheap relaxed atomics either way).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every value, keeping registrations (and handles) alive.
  void ResetValues();

  /// Snapshot accessors for the exporters, sorted by name.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

  /// Unique per-instance id (never reused), so cached handle bundles can
  /// detect that Current() now points at a different registry.
  uint64_t id() const { return id_; }

  /// Default duration buckets in milliseconds (10us .. 10s).
  static const std::vector<double>& LatencyBoundsMs();

  /// The process-wide default registry.
  static MetricsRegistry& Global();
  /// The registry instrumentation writes to: Global() unless a
  /// ScopedMetricsRegistry override is active.
  static MetricsRegistry& Current();

 private:
  friend class ScopedMetricsRegistry;
  static std::atomic<MetricsRegistry*>& CurrentSlot();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{true};
  const uint64_t id_;
};

/// RAII override of MetricsRegistry::Current() — the test-isolation hook.
/// Scopes nest; each restores the previous registry on destruction.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace obs
}  // namespace midas

#endif  // MIDAS_OBS_METRICS_H_
