#include "midas/obs/metrics.h"

#include <algorithm>

namespace midas {
namespace obs {

namespace {

uint64_t NextRegistryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    const std::vector<double>& b = bounds.empty() ? LatencyBoundsMs() : bounds;
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(std::string(name), b)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<const Counter*> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(c.get());
  return out;  // std::map iteration is already name-sorted
}

std::vector<const Gauge*> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(h.get());
  return out;
}

const std::vector<double>& MetricsRegistry::LatencyBoundsMs() {
  static const std::vector<double> bounds = {0.01, 0.05, 0.1,  0.5,  1.0,
                                             5.0,  10.0, 50.0, 100.0, 500.0,
                                             1000.0, 5000.0, 10000.0};
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

std::atomic<MetricsRegistry*>& MetricsRegistry::CurrentSlot() {
  static std::atomic<MetricsRegistry*> slot{nullptr};
  return slot;
}

MetricsRegistry& MetricsRegistry::Current() {
  MetricsRegistry* r = CurrentSlot().load(std::memory_order_acquire);
  return r != nullptr ? *r : Global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : prev_(MetricsRegistry::CurrentSlot().exchange(
          &registry, std::memory_order_acq_rel)) {}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  MetricsRegistry::CurrentSlot().store(prev_, std::memory_order_release);
}

}  // namespace obs
}  // namespace midas
