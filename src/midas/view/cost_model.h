#ifndef MIDAS_VIEW_COST_MODEL_H_
#define MIDAS_VIEW_COST_MODEL_H_

#include <cstddef>

namespace midas {
namespace view {

/// Online cost model for the incremental-view strategy choice: per-row EWMA
/// of the observed delta-apply and full-recompute (rescan) costs. The model
/// only picks *which* of two bit-identical refresh paths runs, so a wrong
/// prediction costs time, never correctness — which is why a coarse EWMA is
/// enough.
///
/// Units: the rescan cost is per pattern row (every pattern is recomputed
/// from scratch); the delta cost is per churn row (a universe id entering or
/// leaving the evaluation universe, plus each pattern whose label-coverage
/// inputs went dirty). The two per-row rates live in different units on
/// purpose — each path is extrapolated along its own driver.
class ViewCostModel {
 public:
  /// EWMA smoothing factor for new observations (0 < alpha <= 1).
  static constexpr double kAlpha = 0.3;
  /// Hard fallback guard: when the universe churn exceeds this fraction of
  /// the universe, delta-apply degenerates towards a rescan with extra
  /// bookkeeping, so the rescan path is forced regardless of the EWMAs.
  static constexpr double kMaxChurnFraction = 0.5;

  /// Records one completed delta-apply refresh.
  void ObserveDelta(double wall_ms, size_t churn_rows);
  /// Records one completed full-recompute refresh.
  void ObserveRescan(double wall_ms, size_t pattern_rows);

  /// True when the delta path is predicted cheaper than a rescan for a
  /// round with `churn_rows` changed universe rows against `universe_size`
  /// universe rows and `pattern_rows` patterns. Optimistic before any
  /// observation exists: the first rounds run delta (subject to the churn
  /// guard) precisely to collect the EWMAs.
  bool PreferDelta(size_t churn_rows, size_t universe_size,
                   size_t pattern_rows) const;

  /// Estimated cost of each path for the given shape (0 when unobserved).
  double EstimateDeltaMs(size_t churn_rows) const;
  double EstimateRescanMs(size_t pattern_rows) const;

  bool have_delta_observation() const { return have_delta_; }
  bool have_rescan_observation() const { return have_rescan_; }
  double delta_row_ms() const { return delta_row_ms_; }
  double rescan_row_ms() const { return rescan_row_ms_; }

 private:
  double delta_row_ms_ = 0.0;
  double rescan_row_ms_ = 0.0;
  bool have_delta_ = false;
  bool have_rescan_ = false;
};

}  // namespace view
}  // namespace midas

#endif  // MIDAS_VIEW_COST_MODEL_H_
