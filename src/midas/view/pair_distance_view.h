#ifndef MIDAS_VIEW_PAIR_DISTANCE_VIEW_H_
#define MIDAS_VIEW_PAIR_DISTANCE_VIEW_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "midas/select/pattern.h"

namespace midas {
namespace view {

/// Materialized view over the pairwise pattern distances that back every
/// diversity computation (div = min over others of ged(p, other)).
///
/// Pattern ids are never reused within an engine lifetime (PatternSet's
/// allocator is monotonic) and pattern graphs are immutable per id, so a
/// (min_id, max_id) entry stays exact until either pattern dies
/// (ForgetPattern) or the estimator itself changes — the GED refinement is
/// tightened by the FCT feature trees, so entries are valid only for one
/// feature digest (SetDigest clears the view when the digest moves).
///
/// Budget discipline mirrors ComputeCache: values are stored only when the
/// round budget has not tripped (a tripped estimate may be the cheap bound,
/// not the refined distance), and callers must bypass the view entirely
/// while the budget is exhausted — HybridGed returns the cheap bound in
/// that state and a cached refined value would over-count it.
class PairDistanceView {
 public:
  /// Declares the feature digest the stored distances are valid for;
  /// clears the view when it differs from the last one.
  void SetDigest(uint64_t digest);

  bool Lookup(PatternId a, PatternId b, double* out) const;
  void Store(PatternId a, PatternId b, double distance);

  /// Drops every pair involving `id` (pattern swapped out of the panel).
  void ForgetPattern(PatternId id);
  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  static std::pair<PatternId, PatternId> Key(PatternId a, PatternId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  mutable std::mutex mu_;
  std::map<std::pair<PatternId, PatternId>, double> dist_;
  uint64_t digest_ = 0;
  bool digest_set_ = false;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

/// Drop-in replacement for RefreshDiversityAndScores that serves clean
/// pairs from the view and computes (and, budget permitting, stores) only
/// the missing ones. Bit-identical to the plain version: the view stores
/// exactly what `ged` returns for the pair, the min-reduction is order
/// independent, and while `budget` is exhausted the view is bypassed so the
/// cheap-bound degradation matches the oracle's. `view` may be null (plain
/// recompute).
void RefreshDiversityAndScoresCached(PatternSet& set, const GedEstimator& ged,
                                     PairDistanceView* view,
                                     ExecBudget* budget, TaskPool* pool);

}  // namespace view
}  // namespace midas

#endif  // MIDAS_VIEW_PAIR_DISTANCE_VIEW_H_
