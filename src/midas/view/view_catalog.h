#ifndef MIDAS_VIEW_VIEW_CATALOG_H_
#define MIDAS_VIEW_VIEW_CATALOG_H_

#include <cstdint>

#include "midas/common/id_set.h"
#include "midas/view/cost_model.h"
#include "midas/view/pair_distance_view.h"

namespace midas {
namespace view {

/// Per-round accounting of the incremental-view machinery, surfaced in
/// MaintenanceStats, flight records and the midas_view_* metrics.
struct ViewRoundReport {
  bool used_delta = false;   ///< refresh ran the delta-apply path
  bool fallback = false;     ///< views were usable but rescan was chosen
  size_t delta_rows = 0;     ///< patterns maintained by delta propagation
  size_t rescan_rows = 0;    ///< patterns fully recomputed from scratch
};

/// Registry of the engine's incrementally-maintained materialized views:
///
///   - per-pattern coverage IdSets + scov (delta-applied from the
///     evaluation-universe churn Δ⁺/Δ⁻ instead of re-running VF2 on
///     survivors);
///   - per-pattern label-coverage accumulators (lcov numerators, dirtied
///     only by patterns whose edge-label pairs intersect the batch's
///     changed pairs);
///   - the pairwise distance memo behind diversity/score refreshes and the
///     swap loop (PairDistanceView).
///
/// The *data* of the first two views lives inside CannedPattern (coverage,
/// lcov_count) — the catalog owns their validity, the base universe the
/// next delta is computed against, the cost model that picks delta vs
/// rescan, and the per-round report. The existing full-recompute path
/// (RefreshAllPatternMetrics) is kept as the oracle: both paths produce
/// bit-identical bytes, so the strategy choice is free to be heuristic.
class ViewCatalog {
 public:
  /// The plan for one round's metric refresh, produced by PlanRefresh.
  struct Plan {
    bool use_delta = false;
    bool fallback = false;  ///< valid view, but the cost model chose rescan
    IdSet added;            ///< universe ids that entered since last commit
    IdSet removed;          ///< universe ids that left since last commit
  };

  explicit ViewCatalog(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  /// True when the committed base state can seed a delta-apply (false after
  /// Initialize/LoadPatterns/restore until the first full refresh commits).
  bool valid() const { return valid_; }

  /// Drops every view: the next round rescans and re-seeds. Called whenever
  /// pattern state is replaced wholesale (LoadPatterns, derived-state
  /// rebuilds, snapshot restore).
  void Invalidate();

  /// Decides this round's strategy against the new evaluation universe.
  /// The churn driving the cost model is |added| + |removed| universe ids.
  Plan PlanRefresh(size_t pattern_rows, const IdSet& new_universe) const;

  /// Cost-model feedback from the executed refresh.
  void ObserveDelta(double wall_ms, size_t churn_rows);
  void ObserveRescan(double wall_ms, size_t pattern_rows);

  /// Commits the round's base state: the universe subsequent plans delta
  /// against, and the GED feature digest the pair view is valid for.
  /// Marks the catalog valid.
  void Commit(const IdSet& universe, uint64_t ged_digest);

  PairDistanceView& pair_view() { return pairs_; }
  const ViewCostModel& cost_model() const { return cost_; }

 private:
  bool enabled_;
  bool valid_ = false;
  IdSet universe_;  ///< committed evaluation universe (delta base)
  ViewCostModel cost_;
  PairDistanceView pairs_;
};

}  // namespace view
}  // namespace midas

#endif  // MIDAS_VIEW_VIEW_CATALOG_H_
