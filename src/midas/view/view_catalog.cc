#include "midas/view/view_catalog.h"

namespace midas {
namespace view {

void ViewCatalog::Invalidate() {
  valid_ = false;
  universe_.clear();
  pairs_.Clear();
}

ViewCatalog::Plan ViewCatalog::PlanRefresh(size_t pattern_rows,
                                           const IdSet& new_universe) const {
  Plan plan;
  if (!enabled_ || !valid_) return plan;
  plan.added = IdSet::Difference(new_universe, universe_);
  plan.removed = IdSet::Difference(universe_, new_universe);
  size_t churn = plan.added.size() + plan.removed.size();
  plan.use_delta =
      cost_.PreferDelta(churn, new_universe.size(), pattern_rows);
  plan.fallback = !plan.use_delta;
  return plan;
}

void ViewCatalog::ObserveDelta(double wall_ms, size_t churn_rows) {
  cost_.ObserveDelta(wall_ms, churn_rows);
}

void ViewCatalog::ObserveRescan(double wall_ms, size_t pattern_rows) {
  cost_.ObserveRescan(wall_ms, pattern_rows);
}

void ViewCatalog::Commit(const IdSet& universe, uint64_t ged_digest) {
  universe_ = universe;
  pairs_.SetDigest(ged_digest);
  valid_ = true;
}

}  // namespace view
}  // namespace midas
