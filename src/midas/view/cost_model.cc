#include "midas/view/cost_model.h"

#include <algorithm>

namespace midas {
namespace view {

namespace {

// EWMA update with a cold-start shortcut: the first observation seeds the
// average instead of decaying from zero.
void Ewma(double* avg, bool* have, double sample) {
  if (!*have) {
    *avg = sample;
    *have = true;
    return;
  }
  *avg = ViewCostModel::kAlpha * sample + (1.0 - ViewCostModel::kAlpha) * *avg;
}

}  // namespace

void ViewCostModel::ObserveDelta(double wall_ms, size_t churn_rows) {
  double rows = static_cast<double>(std::max<size_t>(1, churn_rows));
  Ewma(&delta_row_ms_, &have_delta_, wall_ms / rows);
}

void ViewCostModel::ObserveRescan(double wall_ms, size_t pattern_rows) {
  double rows = static_cast<double>(std::max<size_t>(1, pattern_rows));
  Ewma(&rescan_row_ms_, &have_rescan_, wall_ms / rows);
}

double ViewCostModel::EstimateDeltaMs(size_t churn_rows) const {
  return delta_row_ms_ * static_cast<double>(std::max<size_t>(1, churn_rows));
}

double ViewCostModel::EstimateRescanMs(size_t pattern_rows) const {
  return rescan_row_ms_ *
         static_cast<double>(std::max<size_t>(1, pattern_rows));
}

bool ViewCostModel::PreferDelta(size_t churn_rows, size_t universe_size,
                                size_t pattern_rows) const {
  // |Δ| a large fraction of |D|: delta-apply would touch nearly every row
  // anyway, so pay for the straight rescan (which also re-tightens the
  // EWMA it is extrapolated from).
  if (static_cast<double>(churn_rows) >
      kMaxChurnFraction * static_cast<double>(std::max<size_t>(1,
                                                              universe_size))) {
    return false;
  }
  // Cold start: run delta to collect its EWMA; without a rescan observation
  // there is nothing to compare against either way.
  if (!have_delta_ || !have_rescan_) return true;
  return EstimateDeltaMs(churn_rows) < EstimateRescanMs(pattern_rows);
}

}  // namespace view
}  // namespace midas
