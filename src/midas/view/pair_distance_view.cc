#include "midas/view/pair_distance_view.h"

#include <limits>
#include <vector>

namespace midas {
namespace view {

void PairDistanceView::SetDigest(uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  if (digest_set_ && digest_ == digest) return;
  dist_.clear();
  digest_ = digest;
  digest_set_ = true;
}

bool PairDistanceView::Lookup(PatternId a, PatternId b, double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dist_.find(Key(a, b));
  if (it == dist_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second;
  return true;
}

void PairDistanceView::Store(PatternId a, PatternId b, double distance) {
  std::lock_guard<std::mutex> lock(mu_);
  // Concurrent writers agree: the estimator is deterministic, so a pair
  // computed twice under contention stores the same value.
  dist_.emplace(Key(a, b), distance);
}

void PairDistanceView::ForgetPattern(PatternId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = dist_.begin(); it != dist_.end();) {
    if (it->first.first == id || it->first.second == id) {
      it = dist_.erase(it);
    } else {
      ++it;
    }
  }
}

void PairDistanceView::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  dist_.clear();
}

size_t PairDistanceView::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dist_.size();
}

uint64_t PairDistanceView::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PairDistanceView::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void RefreshDiversityAndScoresCached(PatternSet& set, const GedEstimator& ged,
                                     PairDistanceView* view,
                                     ExecBudget* budget, TaskPool* pool) {
  if (view == nullptr) {
    RefreshDiversityAndScores(set, ged, pool);
    return;
  }
  auto& patterns = set.patterns();
  std::vector<CannedPattern*> rows;
  rows.reserve(patterns.size());
  for (auto& [id, p] : patterns) rows.push_back(&p);
  // Same shape as RefreshDiversityAndScores: one min-GED row per pattern,
  // each writing only its own pattern. Clean pairs come from the view; a
  // pair is computed at most once per round either way, so values (and the
  // fold order of the min) match the oracle exactly.
  ParallelFor(pool, rows.size(), [&](size_t i) {
    CannedPattern& p = *rows[i];
    double min_ged = std::numeric_limits<double>::max();
    for (const auto& [oid, other] : patterns) {
      if (oid == p.id) continue;
      double d = 0.0;
      if (BudgetExhausted(budget)) {
        // Oracle semantics under exhaustion: HybridGed degrades to the
        // cheap bound and never consults its memo, so neither do we.
        d = ged(p.graph, other.graph);
      } else if (!view->Lookup(p.id, oid, &d)) {
        d = ged(p.graph, other.graph);
        // A budget that tripped mid-estimate leaves `d` truncated — only
        // exact outcomes may enter the view (same rule as ComputeCache).
        if (!BudgetExhausted(budget)) view->Store(p.id, oid, d);
      }
      min_ged = std::min(min_ged, d);
    }
    p.div = patterns.size() <= 1
                ? static_cast<double>(p.graph.NumEdges())  // lone pattern
                : min_ged;
    p.score = p.cog > 0.0 ? p.scov * p.lcov * p.div / p.cog : 0.0;
  });
}

}  // namespace view
}  // namespace midas
