#include "midas/maintain/modification.h"

#include <algorithm>
#include <cmath>

#include "midas/graph/graphlet.h"

namespace midas {

double DistributionDistanceValue(const std::vector<double>& psi1,
                                 const std::vector<double>& psi2,
                                 DistributionDistance measure) {
  size_t n = std::max(psi1.size(), psi2.size());
  auto at = [](const std::vector<double>& v, size_t i) {
    return i < v.size() ? v[i] : 0.0;
  };
  switch (measure) {
    case DistributionDistance::kEuclidean:
      return GraphletDistance(psi1, psi2);
    case DistributionDistance::kManhattan: {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += std::fabs(at(psi1, i) - at(psi2, i));
      return s;
    }
    case DistributionDistance::kCosine: {
      double dot = 0.0;
      double n1 = 0.0;
      double n2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double a = at(psi1, i);
        double b = at(psi2, i);
        dot += a * b;
        n1 += a * a;
        n2 += b * b;
      }
      if (n1 <= 0.0 || n2 <= 0.0) return n1 == n2 ? 0.0 : 1.0;
      return std::clamp(1.0 - dot / std::sqrt(n1 * n2), 0.0, 1.0);
    }
    case DistributionDistance::kHellinger: {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = std::sqrt(std::max(0.0, at(psi1, i))) -
                   std::sqrt(std::max(0.0, at(psi2, i)));
        s += d * d;
      }
      return std::sqrt(s / 2.0);
    }
  }
  return 0.0;
}

ModificationReport ClassifyModification(const std::vector<double>& psi_before,
                                        const std::vector<double>& psi_after,
                                        double epsilon,
                                        DistributionDistance measure) {
  ModificationReport report;
  report.distance = DistributionDistanceValue(psi_before, psi_after, measure);
  report.type = report.distance >= epsilon ? ModificationType::kMajor
                                           : ModificationType::kMinor;
  return report;
}

}  // namespace midas
