#ifndef MIDAS_MAINTAIN_MIDAS_H_
#define MIDAS_MAINTAIN_MIDAS_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "midas/cluster/clustering.h"
#include "midas/cluster/csg.h"
#include "midas/common/budget.h"
#include "midas/graph/graphlet.h"
#include "midas/index/fct_index.h"
#include "midas/index/ife_index.h"
#include "midas/maintain/modification.h"
#include "midas/maintain/small_patterns.h"
#include "midas/maintain/swap.h"
#include "midas/obs/event_log.h"
#include "midas/obs/lineage.h"
#include "midas/select/candidate_gen.h"
#include "midas/select/catapult.h"
#include "midas/view/view_catalog.h"

namespace midas {

class UpdateJournal;

namespace obs {
class QualityDriftDetector;
}  // namespace obs

/// End-to-end configuration of the MIDAS framework.
struct MidasConfig {
  FctSet::Config fct;                    ///< sup_min, max tree size
  ClusterSet::Config cluster;            ///< k, max cluster size N
  PatternBudget budget;                  ///< (η_min, η_max, γ)
  WalkConfig walk;
  double epsilon = 0.1;                  ///< evolution ratio threshold ε
  /// Distribution distance used by the major/minor classifier. The paper
  /// (and our ablation bench) find the choice immaterial; ε's scale depends
  /// on the measure.
  DistributionDistance distance_measure = DistributionDistance::kEuclidean;
  double kappa = 0.1;                    ///< swapping threshold κ
  double lambda = 0.1;                   ///< swapping threshold λ
  SwapConfig swap;                       ///< multi-scan parameters
  size_t sample_cap = 400;               ///< lazy sampling for scov
  size_t pcp_starts = 2;
  size_t max_candidates = 256;
  uint64_t seed = 42;
  /// Small-pattern panel (η <= 2) maintained alongside the main set; set
  /// both slot counts to 0 to disable.
  SmallPatternPanel::Config small_panel;

  /// Retained MaintenanceHistory rounds (0 = unbounded). The history is a
  /// ring buffer: older rounds are evicted once the cap is reached, but
  /// Summarize() keeps counting them — a long-lived serving deployment gets
  /// bounded memory without losing its lifetime aggregates.
  size_t history_capacity = 4096;

  /// Per-round execution budget (0 = unlimited). When either limit is set,
  /// every search kernel of the round (FCT maintenance probes + delta
  /// mining, exact-GED refinement, multi-scan swap) shares one ExecBudget
  /// and degrades gracefully on exhaustion: mining returns the trees found
  /// so far, GED falls back to its anytime upper bound, the swap keeps the
  /// swaps already applied. The panel always remains valid (swap is
  /// one-for-one), truncation is reported in MaintenanceStats::truncated,
  /// the `midas_budget_exhausted_*` metrics and the event log.
  double round_deadline_ms = 0.0;   ///< wall-clock cap per ApplyUpdate
  uint64_t round_step_limit = 0;    ///< search-step cap per ApplyUpdate

  /// Shed mode (the serving host's overload ladder flips these; both
  /// default off so standalone rounds are bit-identical to historical
  /// output). `shed_diversity_refresh` skips the two
  /// RefreshDiversityAndScores passes of a round — diversity/score columns
  /// go stale but the panel stays valid. `shed_candidate_cap` (when > 0)
  /// caps candidate generation below max_candidates.
  bool shed_diversity_refresh = false;
  size_t shed_candidate_cap = 0;

  /// Worker threads for the maintenance hot loops (VF2 coverage, pairwise
  /// GED, MCCS splits, graphlet census, mining support counts, candidate
  /// scoring). 1 = the serial reference path (no threads spawned);
  /// 0 = std::thread::hardware_concurrency(). The parallel schedules are
  /// thread-count-invariant: identical config + seed produce identical
  /// pattern sets at any setting (see docs/performance.md).
  int num_threads = 1;

  /// Incrementally-maintained materialized views (view/view_catalog.h):
  /// the refresh phase delta-applies per-pattern coverage, lcov
  /// accumulators and the pairwise-distance memo from the round's Δ⁺/Δ⁻
  /// instead of rescanning |D|, falling back to the full-recompute oracle
  /// when the cost model says the churn is too large. Both paths are
  /// bit-identical, so this is purely a performance knob. The MIDAS_VIEWS
  /// environment variable ("off"/"0") force-disables it process-wide — the
  /// views-off ctest configuration uses that to keep the oracle exercised.
  bool incremental_views = true;
};

/// Sanity-checks a configuration before an engine is built. Returns
/// human-readable problems; empty means valid. Violations of the paper's
/// constraints (η_min > 2, Definition 3.1) are errors; dubious-but-legal
/// settings come back prefixed "warning:".
std::vector<std::string> ValidateConfig(const MidasConfig& config);

/// X-macro over the per-phase wall-time fields of MaintenanceStats, in
/// report order. Anything phase-shaped added to the struct must be added
/// here too — ToJson/FromJson, PhaseSumMs, the maintenance event log, and
/// the per-phase metric histograms are all generated from this list, and a
/// static_assert in midas.cc trips when the struct grows without it.
#define MIDAS_MAINTENANCE_PHASES(X) \
  X(apply_ms)                       \
  X(fct_ms)                         \
  X(cluster_ms)                     \
  X(csg_ms)                         \
  X(index_ms)                       \
  X(refresh_ms)                     \
  X(candidate_ms)                   \
  X(swap_ms)

/// Timing and outcome report of one maintenance round (the PMT breakdown of
/// Section 7). All phase timings are measured by obs::TraceSpan, which also
/// feeds the `midas_maintain_<phase>_ms` histograms of the current
/// obs::MetricsRegistry; the phases partition the round, so they sum to
/// total_ms up to span overhead.
struct MaintenanceStats {
  double total_ms = 0.0;      ///< PMT: full Algorithm 1 wall time
  double apply_ms = 0.0;      ///< ΔD application + graphlet census upkeep
  double fct_ms = 0.0;        ///< FCT maintenance (line 5)
  double cluster_ms = 0.0;    ///< cluster assignment/removal/fine split
  double csg_ms = 0.0;        ///< CSG maintenance (line 7)
  double index_ms = 0.0;      ///< index maintenance (line 12)
  double refresh_ms = 0.0;    ///< metric refresh + classification + panel
  double candidate_ms = 0.0;  ///< candidate generation (Section 5)
  double swap_ms = 0.0;       ///< multi-scan swap (Section 6)
  double graphlet_distance = 0.0;
  bool major = false;
  /// True when the round's execution budget ran out and some phase was cut
  /// short (see MidasConfig::round_deadline_ms). The round still completed
  /// and the panel is valid — quality is degraded, not correctness.
  bool truncated = false;
  /// Incremental-view outcome of the refresh phase (view/view_catalog.h):
  /// `view_delta` when the delta-apply path ran; `view_fallback` when the
  /// views were usable but the cost model (or the |Δ|/|D| guard) chose the
  /// full-recompute oracle instead. Both false = views disabled or not yet
  /// seeded. The row counts split the round's pattern refreshes by path.
  bool view_delta = false;
  bool view_fallback = false;
  int candidates = 0;
  int swaps = 0;
  int view_delta_rows = 0;
  int view_rescan_rows = 0;

  /// "delta", "rescan" or "off" — the /statusz and event-log spelling of
  /// the refresh strategy this round.
  const char* ViewStrategy() const {
    if (view_delta) return "delta";
    return view_rescan_rows > 0 ? "rescan" : "off";
  }

  /// Sum of every phase field (excluding total_ms); the phases cover the
  /// whole round, so this tracks total_ms to within span overhead.
  double PhaseSumMs() const;

  /// Round-trippable single-line JSON (all fields). FromJson(ToJson(s))
  /// reproduces s exactly.
  std::string ToJson() const;
  /// Parses ToJson output. On malformed input returns a default-constructed
  /// stats and sets *ok=false (when provided).
  static MaintenanceStats FromJson(std::string_view json, bool* ok = nullptr);
};

/// Rolling record of maintenance rounds — operational telemetry a
/// deployment would chart (PMT over time, major/minor mix, swap volume).
///
/// Bounded: at most `capacity` recent rounds are retained (ring buffer;
/// capacity 0 = unbounded). Eviction never distorts the aggregates —
/// Summarize() runs on lifetime accumulators updated at Record time, so
/// `rounds`, totals, means and maxima keep counting evicted rounds.
class MaintenanceHistory {
 public:
  struct Summary {
    size_t rounds = 0;
    size_t major_rounds = 0;
    int total_swaps = 0;
    double total_pmt_ms = 0.0;
    double mean_pmt_ms = 0.0;
    double max_pmt_ms = 0.0;
  };

  explicit MaintenanceHistory(size_t capacity = 4096)
      : capacity_(capacity) {}

  void Record(const MaintenanceStats& stats);
  /// Rounds recorded over the object's lifetime, including evicted ones.
  size_t rounds() const { return recorded_; }
  /// Rounds currently retained (<= capacity when capped).
  size_t retained() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  /// Rounds dropped by the ring buffer so far.
  size_t evicted() const { return recorded_ - entries_.size(); }
  /// The retained window, oldest first (the last element is the most recent
  /// round; with a cap, the first is round `evicted() + 1`).
  const std::deque<MaintenanceStats>& entries() const { return entries_; }
  Summary Summarize() const;

 private:
  size_t capacity_ = 4096;
  std::deque<MaintenanceStats> entries_;
  // Lifetime accumulators (survive eviction).
  size_t recorded_ = 0;
  size_t major_rounds_ = 0;
  int total_swaps_ = 0;
  double total_pmt_ms_ = 0.0;
  double max_pmt_ms_ = 0.0;
};

/// Maintenance strategy selector for the Section 7 baselines.
enum class MaintenanceMode {
  kMidas,       ///< full Algorithm 1 (multi-scan swap on major updates)
  kRandomSwap,  ///< structures maintained, random swapping instead
  kNoMaintain,  ///< structures maintained, pattern set left untouched
};

/// Aggregate pattern-set quality (the scov/lcov/div/cog panels of Figs 13-16).
struct PatternQuality {
  double scov = 0.0;
  double lcov = 0.0;
  double div = 0.0;
  double cog_avg = 0.0;
  double cog_max = 0.0;
};

/// The MIDAS framework (Algorithm 1): owns the evolving database and every
/// derived structure — FCT pool, clusters, CSGs, FCT-/IFE-indices, and the
/// canned pattern set — and maintains all of them under batch updates.
class MidasEngine {
 public:
  MidasEngine(GraphDatabase db, const MidasConfig& config);
  ~MidasEngine();

  MidasEngine(const MidasEngine&) = delete;
  MidasEngine& operator=(const MidasEngine&) = delete;

  /// Mines FCTs, builds clusters/CSGs/indices and selects the initial canned
  /// pattern set (CATAPULT++ selection). Must be called once before
  /// ApplyUpdate.
  void Initialize();

  /// Applies a batch update ΔD and maintains everything per Algorithm 1.
  MaintenanceStats ApplyUpdate(const BatchUpdate& delta,
                               MaintenanceMode mode = MaintenanceMode::kMidas);

  /// Attaches a query log (Section 3.5 extension): subsequent swaps boost
  /// pattern scores by log frequency. Non-owning; pass nullptr to detach.
  void SetQueryLog(const QueryLog* log) { config_.swap.query_log = log; }

  /// Attaches a maintenance event log: every subsequent ApplyUpdate appends
  /// one structured JSONL record (Δ sizes, classification, per-phase
  /// timings, resulting quality). Non-owning; pass nullptr to detach.
  void SetEventLog(obs::MaintenanceEventLog* log) { event_log_ = log; }

  /// Attaches a write-ahead journal (journal.h): every subsequent
  /// ApplyUpdate appends a fsync'd batch record *before* touching any
  /// state and a commit record (with the post-round panel) after the round.
  /// A failed batch append throws std::runtime_error with the engine
  /// untouched; a crash mid-round is recovered by RecoverEngine, losing at
  /// most the in-flight round. Non-owning; pass nullptr to detach.
  void SetJournal(UpdateJournal* journal) { journal_ = journal; }
  UpdateJournal* journal() const { return journal_; }

  /// Attaches a pattern-quality drift detector (obs/sli.h): after every
  /// committed round the engine feeds it the Definition 2.1 quality
  /// components; a healthy->drifted transition is recorded as a
  /// `quality_drift` line in the attached event log (and the detector
  /// itself exports the `midas_quality_drift_*` metrics). Non-owning;
  /// pass nullptr to detach.
  void SetDriftDetector(obs::QualityDriftDetector* detector) {
    drift_ = detector;
  }
  obs::QualityDriftDetector* drift_detector() const { return drift_; }

  /// Per-pattern provenance ledger (obs/lineage.h): birth, every re-score,
  /// and death of every pattern that ever entered the panel, with the
  /// swap-decision rationale captured at the decision site. Journaled as
  /// `@L` deltas and persisted by snapshots, so it survives recovery
  /// bit-identically.
  const obs::PatternLedger& lineage() const { return ledger_; }
  obs::PatternLedger* lineage_mutable() { return &ledger_; }

  /// Suppresses live lineage recording while recovery replays journaled
  /// rounds (the journaled `@L` deltas are applied verbatim instead, so
  /// replay cannot double-count). Snapshot restore uses it too.
  void SetLineageReplay(bool on) { lineage_replay_ = on; }
  bool lineage_replay() const { return lineage_replay_; }

  /// Fast-forwards the pattern-id allocator (snapshot/journal restore
  /// only; never lowers it). Keeps post-recovery births from reusing ids
  /// of dead patterns already in the ledger.
  void RestorePatternIds(PatternId next_id) {
    patterns_.RestoreNextId(next_id);
  }

  /// Whether Initialize() has completed (ApplyUpdate and LoadPatterns
  /// require it; serving hosts use this to initialize lazily in Start).
  bool initialized() const { return initialized_; }

  /// Overrides the per-round execution budget for subsequent ApplyUpdate
  /// calls (same semantics as MidasConfig::round_deadline_ms /
  /// round_step_limit; 0 = unlimited). EngineHost uses this to tighten the
  /// budget on each retry of a failing batch.
  void SetRoundLimits(double deadline_ms, uint64_t step_limit) {
    config_.round_deadline_ms = deadline_ms;
    config_.round_step_limit = step_limit;
  }

  /// Toggles shed mode for subsequent rounds (same semantics as
  /// MidasConfig::shed_diversity_refresh / shed_candidate_cap). The
  /// serving host's degradation ladder engages this on the shed-work rung
  /// and reverts it on recovery; both off = historical full-quality rounds.
  void SetShedMode(bool shed_diversity_refresh, size_t candidate_cap) {
    config_.shed_diversity_refresh = shed_diversity_refresh;
    config_.shed_candidate_cap = candidate_cap;
  }
  bool shed_mode() const { return config_.shed_diversity_refresh; }

  /// Replaces the task pool with one of `num_threads` executors (same
  /// semantics as MidasConfig::num_threads; joins the old workers). Only
  /// safe between rounds — the serving host applies
  /// HostConfig::num_threads before Initialize/ApplyUpdate.
  void SetNumThreads(int num_threads);

  /// Number of completed maintenance rounds. Persisted by snapshots as
  /// snapshot_seq so recovery knows which journaled rounds are already
  /// reflected in the restored state.
  uint64_t round_seq() const { return round_seq_; }
  /// Fast-forwards the round counter to `seq` (snapshot restore only;
  /// never lowers it).
  void RestoreRoundSeq(uint64_t seq);

  /// Replaces the canned pattern set (e.g., a panel restored from disk via
  /// pattern_io.h). Metrics are recomputed against the current database and
  /// the pattern columns of both indices are re-registered. Requires
  /// Initialize() to have run.
  void LoadPatterns(PatternSet set);

  /// Re-derives every maintained view (graphlet census, FCT pool, clusters,
  /// CSGs, FCT-/IFE-indices, coverage evaluator) from the current base
  /// database, then re-registers the existing panel and refreshes its
  /// metrics against the fresh structures. The panel itself is kept — this
  /// is the integrity scrubber's cheapest repair rung for derived-state
  /// corruption, not a reselection. Falls back to Initialize() when the
  /// engine was never initialized.
  void RebuildDerivedState();

  const GraphDatabase& db() const { return db_; }
  /// Mutable access to the label dictionary only: interning is append-only
  /// (existing ids never change), so external tools may intern new labels
  /// when staging batch updates or restoring pattern panels.
  LabelDictionary& labels() { return db_.labels(); }
  const PatternSet& patterns() const { return patterns_; }
  const FctSet& fcts() const { return fcts_; }
  const ClusterSet& clusters() const { return clusters_; }
  const std::map<ClusterId, Csg>& csgs() const { return csgs_; }
  const FctIndex& fct_index() const { return fct_index_; }
  const IfeIndex& ife_index() const { return ife_index_; }
  const CoverageEvaluator& evaluator() const { return *eval_; }
  const MidasConfig& config() const { return config_; }
  /// The η <= 2 companion panel (frequent edges/wedges; see
  /// small_patterns.h), refreshed on every update.
  const SmallPatternPanel& small_panel() const { return small_panel_; }

  /// Telemetry of every ApplyUpdate round since Initialize().
  const MaintenanceHistory& history() const { return history_; }

  /// The incremental-view catalog (cost model + pairwise-distance view).
  /// Read-only: tests and the serving host inspect strategy state here.
  const view::ViewCatalog& views() const { return views_; }

  /// The engine-owned task pool (never null; serial when num_threads <= 1).
  TaskPool* pool() const { return pool_.get(); }

  PatternQuality CurrentQuality() const;

 private:
  /// Rebuilds CSGs whose member set diverged from their cluster (splits) and
  /// drops CSGs of deleted clusters; incremental Add/Remove handles the rest.
  void ReconcileCsgs();
  /// Drops and rebuilds every CSG from the current clusters (parallel,
  /// inserted in ascending cluster-id order).
  void RebuildCsgsFromClusters();
  /// Recomputes scov/lcov/cog of every pattern (one pool task per pattern).
  void RefreshAllPatternMetrics();
  /// Delta-applies the round's Δ⁺/Δ⁻ to every pattern's coverage/lcov view:
  /// removed universe ids are cleared from coverage bitsets without any VF2
  /// work, added ids are probed via CoverageOver (FCT/IFE candidate filter
  /// first), and lcov numerators are re-unioned only for patterns whose
  /// edge labels intersect `changed_pairs`. Produces byte-identical state
  /// to RefreshAllPatternMetrics by construction.
  void DeltaRefreshPatternMetrics(const view::ViewCatalog::Plan& plan,
                                  const std::set<EdgeLabelPair>& changed_pairs);
  /// Registers/unregisters pattern columns in both indices to match P.
  void SyncPatternColumns();
  /// Affected csgs (C⁺ ∪ C⁻ ∪ newly created) as a csg map view.
  std::map<ClusterId, Csg> AffectedCsgView(
      const std::vector<ClusterId>& affected) const;

  MidasConfig config_;
  Rng rng_;
  /// Work-stealing pool shared by every phase of the engine (common/parallel).
  /// Owned here so one set of threads serves the engine's whole lifetime.
  std::unique_ptr<TaskPool> pool_;
  GraphDatabase db_;
  GraphletCensus census_;
  FctSet fcts_;
  ClusterSet clusters_;
  std::map<ClusterId, Csg> csgs_;
  FctIndex fct_index_;
  IfeIndex ife_index_;
  std::unique_ptr<CoverageEvaluator> eval_;
  PatternSet patterns_;
  std::set<PatternId> indexed_patterns_;
  /// The one diversity measure used for swapping and reporting; rebuilt
  /// whenever the FCT universe changes (HybridGed over the feature trees).
  GedEstimator ged_;
  SmallPatternPanel small_panel_;
  MaintenanceHistory history_;
  obs::MaintenanceEventLog* event_log_ = nullptr;  ///< non-owning
  UpdateJournal* journal_ = nullptr;               ///< non-owning
  obs::QualityDriftDetector* drift_ = nullptr;     ///< non-owning
  /// The one budget every kernel of the current round shares. A stable
  /// member (not a stack object) because the HybridGed closure captures its
  /// address; reset per round, returned to unlimited between rounds so
  /// out-of-round calls (LoadPatterns, CurrentQuality) never degrade.
  ExecBudget round_budget_;
  /// Materialized-view catalog: committed evaluation universe, per-row cost
  /// EWMAs and the pairwise-distance memo. Invalid until the first full
  /// rescan commits it (Initialize's selection uses its own evaluator, so
  /// its coverage is not guaranteed against eval_'s universe).
  view::ViewCatalog views_;
  /// Digest of the feature trees behind ged_ — the pair-distance view's
  /// validity key (view entries estimated under another FCT generation can
  /// never be read back).
  uint64_t ged_digest_ = 0;
  obs::PatternLedger ledger_;
  bool lineage_replay_ = false;
  uint64_t round_seq_ = 0;
  bool initialized_ = false;
};

/// From-scratch regeneration baselines (Section 7.1): rebuilds everything on
/// the current database and reselects patterns. `plus_plus` switches between
/// plain CATAPULT (frequent-subtree features, no indices) and CATAPULT++
/// (FCT features + FCT-/IFE-indices).
struct FromScratchResult {
  PatternSet patterns;
  double mine_ms = 0.0;
  double cluster_ms = 0.0;
  double index_ms = 0.0;
  double select_ms = 0.0;
  double total_ms = 0.0;
};

FromScratchResult RunFromScratch(const GraphDatabase& db,
                                 const MidasConfig& config, bool plus_plus,
                                 uint64_t seed);

/// Aggregate quality of an arbitrary pattern set against a database.
PatternQuality EvaluateQuality(const PatternSet& set, size_t universe_size);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_MIDAS_H_
