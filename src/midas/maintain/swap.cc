#include "midas/maintain/swap.h"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>

#include "midas/common/stats.h"
#include "midas/graph/ged.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"
#include "midas/view/pair_distance_view.h"

namespace midas {

GedEstimator DefaultGedEstimator() {
  return [](const Graph& a, const Graph& b) {
    return static_cast<double>(GedLowerBound(a, b));
  };
}

namespace {

// Working view of the swap: evaluated patterns + candidates with helpers
// for hypothetical set metrics.
class SwapEngine {
 public:
  SwapEngine(PatternSet& set, const CoverageEvaluator& eval,
             const FctSet& fcts, const SwapConfig& config,
             const GedEstimator& ged)
      : set_(set), eval_(eval), fcts_(fcts), config_(config), ged_(ged) {}

  SwapStats Run(const std::vector<Graph>& candidate_graphs) {
    SwapStats stats;
    ExecBudget* budget = config_.budget;
    // Evaluate candidates once (coverage, lcov, cog are set-independent).
    // Candidates not evaluated before exhaustion simply never compete.
    {
      std::vector<CannedPattern> evaluated(candidate_graphs.size());
      std::vector<uint8_t> done(candidate_graphs.size(), 0);
      ParallelFor(
          config_.pool, candidate_graphs.size(),
          [&](size_t i) {
            evaluated[i].graph = candidate_graphs[i];
            RefreshPatternMetrics(evaluated[i], eval_, fcts_);
            done[i] = 1;
          },
          budget);
      for (size_t i = 0; i < evaluated.size(); ++i) {
        if (done[i] == 0) continue;
        candidates_.push_back(std::move(evaluated[i]));
        ++stats.candidates_evaluated;
      }
    }
    RefreshLabelCoverageSets();

    double kappa = config_.kappa;
    double sigma = config_.sigma0;
    std::vector<bool> used(candidates_.size(), false);
    for (int scan = 0;
         scan < config_.max_scans && !BudgetExhausted(budget); ++scan) {
      ++stats.scans;
      int swaps = RunScan(kappa, used);
      stats.swaps += swaps;
      stats.kappa_final = kappa;
      if (swaps == 0) break;
      if (config_.use_swap_alpha_schedule) {
        if (sigma >= 0.5) break;       // approximation ratio target reached
        kappa = 1.0 - 2.0 * sigma;     // Lemma 6.3
        sigma = 0.25 / (1.0 - sigma);
      }
    }
    stats.truncated = BudgetExhausted(budget);

    FinalizeScores();
    return stats;
  }

 private:
  // Label-coverage id-sets per live pattern id (for the f_lcov criterion).
  void RefreshLabelCoverageSets() {
    label_cov_.clear();
    for (const auto& [id, p] : set_.patterns()) {
      label_cov_[id] = LabelCoverageSet(p.graph);
    }
  }

  IdSet LabelCoverageSet(const Graph& g) const {
    IdSet covered;
    const auto& edge_occ = fcts_.edge_occurrences();
    for (const EdgeLabelPair& lp : g.DistinctEdgeLabels()) {
      auto it = edge_occ.find(lp);
      if (it != edge_occ.end()) covered.UnionWith(it->second);
    }
    return covered;
  }

  // Memoized pairwise distance. Keys: pattern ids for set members, the
  // candidate's address for candidates (graphs are immutable during the
  // swap). Unordered pair -> one cache entry. Pattern-pattern pairs are
  // additionally served from (and written back to) the engine's persistent
  // PairDistanceView, so distances already estimated by this round's
  // diversity refresh — or by earlier rounds under the same feature
  // digest — never re-run the estimator. Bypassed while the budget is
  // exhausted (the view holds refined values; HybridGed would return the
  // cheap bound in that state, and serving the refined one would diverge
  // from the oracle).
  double Dist(uint64_t ka, const Graph& a, uint64_t kb,
              const Graph& b) const {
    if (ka > kb) return Dist(kb, b, ka, a);
    const bool persistent_pair =
        config_.pair_view != nullptr &&
        (kb & 0x8000000000000000ULL) == 0 &&
        !BudgetExhausted(config_.budget);
    if (persistent_pair) {
      double d = 0.0;
      if (config_.pair_view->Lookup(static_cast<PatternId>(ka),
                                    static_cast<PatternId>(kb), &d)) {
        return d;
      }
    }
    {
      std::lock_guard<std::mutex> lock(dist_mu_);
      auto it = dist_cache_.find({ka, kb});
      if (it != dist_cache_.end()) return it->second;
    }
    // Computed outside the lock: a pair may be estimated twice under
    // contention, but ged_ is deterministic so both writers agree.
    double d = ged_(a, b);
    std::lock_guard<std::mutex> lock(dist_mu_);
    dist_cache_.emplace(std::make_pair(ka, kb), d);
    if (persistent_pair && !BudgetExhausted(config_.budget)) {
      config_.pair_view->Store(static_cast<PatternId>(ka),
                               static_cast<PatternId>(kb), d);
    }
    return d;
  }

  static uint64_t PatternKey(PatternId id) { return id; }
  static uint64_t GraphKey(const Graph* g) {
    return 0x8000000000000000ULL | reinterpret_cast<uint64_t>(g);
  }

  // Minimum pairwise distance of the member to the rest of the set, with an
  // optional exclusion and an optional extra member.
  double DivOf(uint64_t key, const Graph& g, PatternId self,
               PatternId excluded, const Graph* extra) const {
    double best = std::numeric_limits<double>::max();
    for (const auto& [id, p] : set_.patterns()) {
      if (id == self || id == excluded) continue;
      best = std::min(best, Dist(key, g, PatternKey(id), p.graph));
    }
    if (extra != nullptr) {
      best = std::min(best, Dist(key, g, GraphKey(extra), *extra));
    }
    return best == std::numeric_limits<double>::max()
               ? static_cast<double>(g.NumEdges())
               : best;
  }

  // f_div of the hypothetical set (P \ excluded) ∪ {extra}.
  double SetDiversity(PatternId excluded, const Graph* extra) const {
    double best = std::numeric_limits<double>::max();
    for (const auto& [id, p] : set_.patterns()) {
      if (id == excluded) continue;
      best = std::min(best, DivOf(PatternKey(id), p.graph, id, excluded,
                                   extra));
    }
    if (extra != nullptr) {
      best = std::min(best, DivOf(GraphKey(extra), *extra,
                                   static_cast<PatternId>(-1), excluded,
                                   nullptr));
    }
    return best == std::numeric_limits<double>::max() ? 0.0 : best;
  }

  double SetCog(PatternId excluded, const Graph* extra) const {
    double worst = 0.0;
    for (const auto& [id, p] : set_.patterns()) {
      if (id == excluded) continue;
      worst = std::max(worst, p.cog);
    }
    if (extra != nullptr) worst = std::max(worst, extra->CognitiveLoad());
    return worst;
  }

  double SetLcov(PatternId excluded, const IdSet* extra_cov) const {
    IdSet all;
    for (const auto& [id, cov] : label_cov_) {
      if (id == excluded) continue;
      all.UnionWith(cov);
    }
    if (extra_cov != nullptr) all.UnionWith(*extra_cov);
    size_t db_size = eval_.db().size();
    return db_size == 0 ? 0.0
                        : static_cast<double>(all.size()) /
                              static_cast<double>(db_size);
  }

  std::vector<double> SizesWithSwap(PatternId excluded,
                                    const Graph* extra) const {
    std::vector<double> sizes;
    for (const auto& [id, p] : set_.patterns()) {
      if (id == excluded) continue;
      sizes.push_back(static_cast<double>(p.graph.NumEdges()));
    }
    if (extra != nullptr) sizes.push_back(static_cast<double>(extra->NumEdges()));
    return sizes;
  }

  // Query-log boost factor (1 when no log is attached); memoized per key
  // since the log scan is a VF2 pass over the whole window.
  double LogBoost(uint64_t key, const Graph& g) const {
    if (config_.query_log == nullptr || config_.query_log->empty()) {
      return 1.0;
    }
    {
      std::lock_guard<std::mutex> lock(boost_mu_);
      auto it = log_boost_cache_.find(key);
      if (it != log_boost_cache_.end()) return it->second;
    }
    double boost =
        1.0 + config_.log_boost * config_.query_log->PatternWeight(g);
    std::lock_guard<std::mutex> lock(boost_mu_);
    log_boost_cache_.emplace(key, boost);
    return boost;
  }

  // s'_p of an existing pattern under the current set (log-boosted when a
  // query log is attached — the Section 3.5 extension).
  double ScoreOf(const CannedPattern& p) const {
    double div = DivOf(PatternKey(p.id), p.graph, p.id,
                       static_cast<PatternId>(-1), nullptr);
    double s = p.cog > 0.0 ? p.scov * p.lcov * div / p.cog : 0.0;
    return s * LogBoost(PatternKey(p.id), p.graph);
  }

  // s'_{p_c} of a candidate against the current set.
  double CandidateScore(const CannedPattern& c) const {
    double div = DivOf(GraphKey(&c.graph), c.graph,
                       static_cast<PatternId>(-1),
                       static_cast<PatternId>(-1), nullptr);
    double s = c.cog > 0.0 ? c.scov * c.lcov * div / c.cog : 0.0;
    return s * LogBoost(GraphKey(&c.graph), c.graph);
  }

  int RunScan(double kappa, std::vector<bool>& used) {
    int swaps = 0;
    // Candidate priority queue, best score first. Scoring prefills the
    // pairwise-distance cache, so it fans out over the pool; the swap loop
    // below then runs serially on a warm cache.
    std::vector<size_t> live;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (!used[i]) live.push_back(i);
    }
    std::vector<std::pair<double, size_t>> cq(live.size());
    ParallelFor(config_.pool, live.size(), [&](size_t k) {
      size_t i = live[k];
      cq[k] = {-CandidateScore(candidates_[i]), i};
    });
    std::sort(cq.begin(), cq.end());

    for (const auto& [neg_score, ci] : cq) {
      (void)neg_score;  // queue order is fixed at scan start, as in the paper
      if (set_.size() == 0) break;
      // Anytime cut: each completed iteration is a committed one-for-one
      // swap (or a no-op), so stopping between candidates is always safe.
      if (BudgetExhausted(config_.budget)) break;
      CannedPattern& cand = candidates_[ci];
      // Scores are re-evaluated against the *current* set: earlier swaps in
      // this scan change diversity terms.
      double cand_score = CandidateScore(cand);

      // Weakest existing pattern by s'_p.
      PatternId worst_id = 0;
      double worst_score = std::numeric_limits<double>::max();
      for (const auto& [id, p] : set_.patterns()) {
        double s = ScoreOf(p);
        if (s < worst_score) {
          worst_score = s;
          worst_id = id;
        }
      }
      // sw2 doubles as the scan terminator (Section 6.2).
      if (cand_score < (1.0 + config_.lambda) * worst_score) break;

      // sw1: benefit vs loss on union subgraph coverage.
      IdSet cov_union = set_.CoverageUnion();
      double benefit =
          static_cast<double>(cand.coverage.DifferenceSize(cov_union));
      double loss = static_cast<double>(set_.UniqueCoverage(worst_id));
      if (benefit < (1.0 + kappa) * loss) continue;

      // Size-distribution similarity (Kolmogorov-Smirnov).
      if (!KsSimilar(set_.SizeDistribution(),
                     SizesWithSwap(worst_id, &cand.graph),
                     config_.ks_alpha)) {
        continue;
      }

      // sw3-sw5: set-level quality must not regress.
      double div_before = SetDiversity(static_cast<PatternId>(-1), nullptr);
      double div_after = SetDiversity(worst_id, &cand.graph);
      if (div_after < div_before) continue;
      double cog_before = SetCog(static_cast<PatternId>(-1), nullptr);
      double cog_after = SetCog(worst_id, &cand.graph);
      if (cog_after > cog_before) continue;
      IdSet cand_label_cov = LabelCoverageSet(cand.graph);
      double lcov_before =
          SetLcov(static_cast<PatternId>(-1), nullptr);
      double lcov_after = SetLcov(worst_id, &cand_label_cov);
      if (lcov_after < lcov_before) continue;

      // Swap. The loser's metrics are captured before it leaves the set —
      // the decision record is the only place they survive.
      const CannedPattern* loser = set_.Find(worst_id);
      SwapDecision decision;
      decision.loser_id = worst_id;
      decision.winner_score = cand_score;
      decision.loser_score = worst_score;
      decision.coverage_gain = benefit;
      decision.coverage_loss = loss;
      decision.kappa = kappa;
      decision.div_before = div_before;
      decision.div_after = div_after;
      decision.cog_before = cog_before;
      decision.cog_after = cog_after;
      decision.lcov_before = lcov_before;
      decision.lcov_after = lcov_after;
      decision.winner_scov = cand.scov;
      decision.winner_lcov = cand.lcov;
      decision.winner_cog = cand.cog;
      if (loser != nullptr) {
        decision.loser_scov = loser->scov;
        decision.loser_lcov = loser->lcov;
        decision.loser_div = loser->div;
        decision.loser_cog = loser->cog;
      }
      set_.Remove(worst_id);
      label_cov_.erase(worst_id);
      if (config_.pair_view != nullptr) {
        // The evicted pattern's id never returns (monotonic allocator), so
        // its rows are dead weight — drop them now.
        config_.pair_view->ForgetPattern(worst_id);
      }
      CannedPattern fresh = cand;
      PatternId new_id = set_.Add(std::move(fresh));
      label_cov_[new_id] = cand_label_cov;
      used[ci] = true;
      ++swaps;
      if (config_.observer) {
        decision.winner_id = new_id;
        config_.observer(decision);
      }
    }
    return swaps;
  }

  void FinalizeScores() {
    auto& patterns = set_.patterns();
    for (auto& [id, p] : patterns) {
      p.div = DivOf(PatternKey(id), p.graph, id,
                    static_cast<PatternId>(-1), nullptr);
      p.score = p.cog > 0.0 ? p.scov * p.lcov * p.div / p.cog : 0.0;
    }
  }

  PatternSet& set_;
  const CoverageEvaluator& eval_;
  const FctSet& fcts_;
  const SwapConfig& config_;
  const GedEstimator& ged_;
  std::vector<CannedPattern> candidates_;
  std::map<PatternId, IdSet> label_cov_;
  mutable std::mutex dist_mu_;
  mutable std::map<std::pair<uint64_t, uint64_t>, double> dist_cache_;
  mutable std::mutex boost_mu_;
  mutable std::map<uint64_t, double> log_boost_cache_;
};

}  // namespace

SwapStats MultiScanSwap(PatternSet& set, const std::vector<Graph>& candidates,
                        const CoverageEvaluator& eval, const FctSet& fcts,
                        const SwapConfig& config, const GedEstimator& ged) {
  obs::TraceSpan span("midas_maintain_swap_scan_ms");
  SwapEngine engine(set, eval, fcts, config, ged);
  SwapStats stats = engine.Run(candidates);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter("midas_maintain_swap_scans_total")
        ->Increment(static_cast<uint64_t>(stats.scans));
    reg.GetCounter("midas_maintain_swap_candidates_total")
        ->Increment(static_cast<uint64_t>(stats.candidates_evaluated));
    if (stats.truncated) {
      reg.GetCounter("midas_maintain_swap_truncated_total")->Increment();
    }
  }
  return stats;
}

int RandomSwap(PatternSet& set, const std::vector<Graph>& candidates,
               const CoverageEvaluator& eval, const FctSet& fcts, Rng& rng,
               const SwapObserver& observer) {
  int swaps = 0;
  for (const Graph& g : candidates) {
    if (set.size() == 0) break;
    if (!rng.Bernoulli(0.5)) continue;
    std::vector<PatternId> ids;
    for (const auto& [id, p] : set.patterns()) ids.push_back(id);
    PatternId victim =
        ids[static_cast<size_t>(rng.UniformInt(0, ids.size() - 1))];
    SwapDecision decision;
    decision.random = true;
    decision.loser_id = victim;
    if (const CannedPattern* loser = set.Find(victim)) {
      decision.loser_score = loser->score;
      decision.loser_scov = loser->scov;
      decision.loser_lcov = loser->lcov;
      decision.loser_div = loser->div;
      decision.loser_cog = loser->cog;
    }
    set.Remove(victim);
    CannedPattern c;
    c.graph = g;
    RefreshPatternMetrics(c, eval, fcts);
    decision.winner_scov = c.scov;
    decision.winner_lcov = c.lcov;
    decision.winner_cog = c.cog;
    decision.winner_id = set.Add(std::move(c));
    ++swaps;
    if (observer) observer(decision);
  }
  return swaps;
}

}  // namespace midas
