#ifndef MIDAS_MAINTAIN_SWAP_H_
#define MIDAS_MAINTAIN_SWAP_H_

#include <functional>
#include <vector>

#include "midas/queryform/query_log.h"
#include "midas/select/pattern.h"

namespace midas {

namespace view {
class PairDistanceView;
}  // namespace view

/// Multi-scan swap-based pattern maintenance (Section 6.2).
///
/// Candidates and existing patterns are ranked by the adapted score
/// s'_p = scov * lcov * div / cog; the best candidate challenges the weakest
/// pattern under criteria sw1-sw5 plus a Kolmogorov-Smirnov check that the
/// pattern-size distribution is not significantly disturbed. A scan
/// terminates when sw2 fails (the remaining candidates cannot beat anyone);
/// subsequent scans run with κ updated by the SWAP_α schedule of Lemma 6.3,
/// which drives the coverage approximation ratio towards 1/2.
struct SwapConfig {
  double kappa = 0.1;       ///< sw1 benefit/loss threshold (first scan)
  double lambda = 0.1;      ///< sw2 score-dominance threshold
  double ks_alpha = 0.05;   ///< size-distribution similarity significance
  int max_scans = 3;
  /// Update κ between scans per Lemma 6.3 (κ_t = 1 - 2σ_{t-1},
  /// σ_t = 0.25 / (1 - σ_{t-1})); otherwise κ stays fixed.
  bool use_swap_alpha_schedule = true;
  double sigma0 = 0.25;     ///< initial approximation-ratio lower bound

  /// Optional query log (Section 3.5 extension): when set, pattern scores
  /// are boosted by their log frequency, s''_p = s'_p * (1 + log_boost *
  /// weight(p)), so patterns users actually formulate resist eviction and
  /// candidates matching the workload are preferred. Non-owning; must
  /// outlive the swap call.
  const QueryLog* query_log = nullptr;
  double log_boost = 1.0;

  /// Optional execution budget (non-owning; nullptr = unlimited). The swap
  /// is *anytime*: it checks the budget between candidate evaluations and
  /// between swap attempts, and on exhaustion stops with whatever swaps
  /// were already applied. Every swap is a one-for-one replacement that
  /// passed sw1-sw5, so any prefix leaves a valid panel of unchanged size —
  /// PatternBudget is never violated by truncation.
  ExecBudget* budget = nullptr;

  /// Optional task pool (non-owning; nullptr = serial). Parallelizes the
  /// upfront candidate metric evaluation and the pairwise-distance prefill
  /// at the start of each scan; the swap decisions themselves remain
  /// sequential, so the outcome is thread-count-invariant.
  TaskPool* pool = nullptr;

  /// Optional swap-decision observer (see SwapObserver below); empty =
  /// no capture.
  std::function<void(const struct SwapDecision&)> observer;

  /// Optional persistent pairwise-distance view (non-owning; nullptr = the
  /// per-call cache only). Pattern-pattern distances estimated during the
  /// round's diversity refresh are served from here instead of re-running
  /// the estimator, and accepted swaps forget the evicted pattern's rows.
  /// Candidate distances never enter it (candidates have no stable id).
  /// Same budget discipline as ComputeCache: bypassed while the round
  /// budget is exhausted, written only by exact estimates.
  view::PairDistanceView* pair_view = nullptr;
};

struct SwapStats {
  int swaps = 0;
  int scans = 0;
  int candidates_evaluated = 0;
  double kappa_final = 0.0;
  bool truncated = false;  ///< stopped early on budget exhaustion
};

/// Default diversity estimator for swapping: the label lower bound GED_l
/// (fast; Lemma 6.1 with n = 0). The engine passes the same HybridGed
/// estimator it uses for reporting, so sw3's non-regression guarantee holds
/// in the reported metric. (GedEstimator itself is declared in pattern.h.)
GedEstimator DefaultGedEstimator();

/// One accepted swap decision, emitted from the decision site itself with
/// every term the sw1–sw5 criteria weighed — the raw material of the
/// provenance ledger (obs/lineage.h). `winner` metrics are the candidate's
/// at acceptance time; `loser_*` are the displaced pattern's.
struct SwapDecision {
  PatternId winner_id = 0;
  PatternId loser_id = 0;
  double winner_score = 0.0;  ///< candidate s'_p against the current set
  double loser_score = 0.0;   ///< the displaced (worst) pattern's score
  double coverage_gain = 0.0; ///< sw1 benefit
  double coverage_loss = 0.0; ///< sw1 loss (loser's unique coverage)
  double kappa = 0.0;         ///< κ of the accepting scan
  double div_before = 0.0, div_after = 0.0;
  double cog_before = 0.0, cog_after = 0.0;
  double lcov_before = 0.0, lcov_after = 0.0;
  /// Winner/loser pattern metrics at decision time.
  double winner_scov = 0.0, winner_lcov = 0.0, winner_cog = 0.0;
  double loser_scov = 0.0, loser_lcov = 0.0, loser_div = 0.0,
         loser_cog = 0.0;
  bool random = false;  ///< true when RandomSwap (baseline mode) decided
};

/// Observer invoked synchronously, on the decision thread, for every swap
/// that executes. The decision loop is serial, so the callback order is
/// thread-count-invariant.
using SwapObserver = std::function<void(const SwapDecision&)>;

/// Runs the multi-scan swap. `set` is updated in place; candidate metrics
/// are evaluated with `eval`/`fcts`. After the call every pattern's cached
/// scov/lcov/cog/div/score reflect the final set (div under `ged`).
SwapStats MultiScanSwap(PatternSet& set, const std::vector<Graph>& candidates,
                        const CoverageEvaluator& eval, const FctSet& fcts,
                        const SwapConfig& config,
                        const GedEstimator& ged = DefaultGedEstimator());

/// Baseline: random swapping (the `Random` competitor of Section 7.1).
/// Each candidate replaces a uniformly random existing pattern with
/// probability 1/2, without any quality checks. The observer (optional)
/// sees each executed swap with `random = true` and no criterion terms.
int RandomSwap(PatternSet& set, const std::vector<Graph>& candidates,
               const CoverageEvaluator& eval, const FctSet& fcts, Rng& rng,
               const SwapObserver& observer = SwapObserver());

}  // namespace midas

#endif  // MIDAS_MAINTAIN_SWAP_H_
