#ifndef MIDAS_MAINTAIN_MODIFICATION_H_
#define MIDAS_MAINTAIN_MODIFICATION_H_

#include <vector>

namespace midas {

/// Major/minor modification classification (Section 3.4).
///
/// MIDAS compares the graphlet frequency distributions of D and D ⊕ ΔD;
/// batch updates whose Euclidean distance reaches the evolution ratio
/// threshold ε are *major* (Type 1) and trigger pattern maintenance, others
/// are *minor* (Type 2) and only refresh the underlying structures.
enum class ModificationType {
  kMajor,  ///< dist(ψ_D, ψ_{D⊕ΔD}) >= ε: canned patterns are refreshed
  kMinor,  ///< below ε: clusters/CSGs/indices maintained, patterns untouched
};

struct ModificationReport {
  double distance = 0.0;
  ModificationType type = ModificationType::kMinor;
};

/// Alternative distribution distances. The paper reports that the choice
/// has no significant impact (Section 3.4); all four are provided so the
/// ablation bench can verify that on our data too. Every measure is zero
/// for identical distributions and grows with drift, so ε retains its
/// meaning (its scale differs per measure).
enum class DistributionDistance {
  kEuclidean,  ///< L2 (the paper's default)
  kManhattan,  ///< L1
  kCosine,     ///< 1 - cosine similarity
  kHellinger,  ///< Hellinger distance (bounded in [0, 1])
};

/// Distance between two distributions under the chosen measure.
double DistributionDistanceValue(const std::vector<double>& psi1,
                                 const std::vector<double>& psi2,
                                 DistributionDistance measure);

/// Classifies a batch update given the two graphlet distributions.
ModificationReport ClassifyModification(
    const std::vector<double>& psi_before,
    const std::vector<double>& psi_after, double epsilon,
    DistributionDistance measure = DistributionDistance::kEuclidean);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_MODIFICATION_H_
