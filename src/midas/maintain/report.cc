#include "midas/maintain/report.h"

#include <iomanip>
#include <sstream>

#include "midas/obs/export.h"
#include "midas/obs/metrics.h"

namespace midas {

std::string RenderEngineReport(const MidasEngine& engine) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2);

  out << "=== MIDAS engine report ===\n";
  out << "database: " << engine.db().size() << " graphs, "
      << engine.db().TotalEdges() << " edges; " << engine.clusters().size()
      << " clusters; " << engine.fcts().FrequentClosedTrees().size()
      << " frequent closed trees\n";

  out << "\npattern panel (" << engine.patterns().size() << " patterns):\n";
  out << std::left << std::setw(6) << "id" << std::setw(5) << "|V|"
      << std::setw(5) << "|E|" << std::setw(8) << "scov" << std::setw(8)
      << "lcov" << std::setw(8) << "div" << std::setw(8) << "cog" << "\n";
  for (const auto& [pid, p] : engine.patterns().patterns()) {
    out << std::left << std::setw(6) << pid << std::setw(5)
        << p.graph.NumVertices() << std::setw(5) << p.graph.NumEdges()
        << std::setw(8) << p.scov << std::setw(8) << p.lcov << std::setw(8)
        << p.div << std::setw(8) << p.cog << "\n";
  }

  PatternQuality q = engine.CurrentQuality();
  out << "set quality: f_scov=" << q.scov << " f_lcov=" << q.lcov
      << " f_div=" << q.div << " cog(avg/max)=" << q.cog_avg << "/"
      << q.cog_max << "\n";

  const auto& panel = engine.small_panel();
  if (!panel.patterns().empty()) {
    out << "\nsmall-pattern panel (eta <= 2): " << panel.patterns().size()
        << " entries, top support " << panel.supports().front() << "\n";
  }

  MaintenanceHistory::Summary s = engine.history().Summarize();
  out << "\nmaintenance history: " << s.rounds << " rounds ("
      << s.major_rounds << " major), " << s.total_swaps
      << " swaps total, mean PMT " << s.mean_pmt_ms << " ms, max "
      << s.max_pmt_ms << " ms\n";

  out << "\n=== metrics (prometheus) ===\n";
  out << obs::ExportPrometheus(obs::MetricsRegistry::Current());
  return out.str();
}

}  // namespace midas
