#include "midas/maintain/verify.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "midas/common/budget.h"
#include "midas/common/checksum.h"
#include "midas/common/parallel.h"
#include "midas/maintain/journal.h"
#include "midas/maintain/snapshot.h"
#include "midas/obs/json.h"

namespace midas {

namespace {

constexpr double kMetricEpsilon = 1e-9;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-pattern deep checks: one RefreshPatternMetrics recomputation covers
/// coverage + scov/lcov/cog; the FCT-index TP column is compared against a
/// fresh feature count of the pattern graph.
void CheckPattern(const MidasEngine& engine, const CannedPattern& p,
                  std::vector<IntegrityViolation>* out) {
  CannedPattern recomputed = p;
  RefreshPatternMetrics(recomputed, engine.evaluator(), engine.fcts());

  if (!(recomputed.coverage == p.coverage)) {
    out->push_back(
        {IntegrityViolationKind::kCoverageMismatch, IntegrityTier::kDeep,
         "pattern " + std::to_string(p.id),
         "stored coverage has " + std::to_string(p.coverage.size()) +
             " graphs, recomputed has " +
             std::to_string(recomputed.coverage.size())});
  }
  auto off = [](double a, double b) {
    return std::abs(a - b) > kMetricEpsilon;
  };
  if (off(recomputed.scov, p.scov) || off(recomputed.lcov, p.lcov) ||
      off(recomputed.cog, p.cog)) {
    std::ostringstream detail;
    detail << "stored scov/lcov/cog " << p.scov << "/" << p.lcov << "/"
           << p.cog << ", recomputed " << recomputed.scov << "/"
           << recomputed.lcov << "/" << recomputed.cog;
    out->push_back({IntegrityViolationKind::kPatternMetricMismatch,
                    IntegrityTier::kDeep,
                    "pattern " + std::to_string(p.id), detail.str()});
  }
  // The incremental views delta-maintain the lcov numerator; it must match
  // a from-scratch re-union exactly (it is an integer — no epsilon).
  if (recomputed.lcov_count != p.lcov_count) {
    out->push_back(
        {IntegrityViolationKind::kPatternMetricMismatch, IntegrityTier::kDeep,
         "pattern " + std::to_string(p.id),
         "stored lcov_count " + std::to_string(p.lcov_count) +
             ", recomputed " + std::to_string(recomputed.lcov_count)});
  }

  auto expected = engine.fct_index().FeatureCounts(p.graph);
  auto stored = engine.fct_index().PatternCounts(p.id);
  std::sort(expected.begin(), expected.end());
  std::sort(stored.begin(), stored.end());
  if (expected != stored) {
    out->push_back(
        {IntegrityViolationKind::kFctIndexMismatch, IntegrityTier::kDeep,
         "pattern " + std::to_string(p.id),
         "TP column has " + std::to_string(stored.size()) +
             " feature entries, recomputed feature counts have " +
             std::to_string(expected.size())});
  }
}

/// Patterns in id order (the map's order) as stable pointers.
std::vector<const CannedPattern*> PatternsInOrder(const MidasEngine& engine) {
  std::vector<const CannedPattern*> out;
  out.reserve(engine.patterns().size());
  for (const auto& [id, p] : engine.patterns().patterns()) {
    out.push_back(&p);
  }
  return out;
}

}  // namespace

const char* IntegrityTierName(IntegrityTier tier) {
  switch (tier) {
    case IntegrityTier::kManifest:
      return "manifest";
    case IntegrityTier::kJournal:
      return "journal";
    case IntegrityTier::kDeep:
      return "deep";
  }
  return "unknown";
}

const char* IntegrityViolationKindName(IntegrityViolationKind kind) {
  switch (kind) {
    case IntegrityViolationKind::kSnapshotMissing:
      return "snapshot_missing";
    case IntegrityViolationKind::kManifestMissing:
      return "manifest_missing";
    case IntegrityViolationKind::kManifestMalformed:
      return "manifest_malformed";
    case IntegrityViolationKind::kFileMissing:
      return "file_missing";
    case IntegrityViolationKind::kChecksumMismatch:
      return "checksum_mismatch";
    case IntegrityViolationKind::kConfigInvalid:
      return "config_invalid";
    case IntegrityViolationKind::kJournalUnreadable:
      return "journal_unreadable";
    case IntegrityViolationKind::kJournalTornTail:
      return "journal_torn_tail";
    case IntegrityViolationKind::kJournalGap:
      return "journal_gap";
    case IntegrityViolationKind::kRestoreFailed:
      return "restore_failed";
    case IntegrityViolationKind::kCoverageMismatch:
      return "coverage_mismatch";
    case IntegrityViolationKind::kPatternMetricMismatch:
      return "pattern_metric_mismatch";
    case IntegrityViolationKind::kFctIndexMismatch:
      return "fct_index_mismatch";
    case IntegrityViolationKind::kPanelDisagreement:
      return "panel_disagreement";
  }
  return "unknown";
}

void IntegrityReport::Add(IntegrityTier tier, IntegrityViolationKind kind,
                          const std::string& object,
                          const std::string& detail) {
  violations.push_back({kind, tier, object, detail});
}

void IntegrityReport::Merge(const IntegrityReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  checks += other.checks;
  tiers_run |= other.tiers_run;
  deep_truncated = deep_truncated || other.deep_truncated;
}

std::string IntegrityReport::Describe() const {
  std::ostringstream out;
  out << "integrity: " << (clean() ? "CLEAN" : "VIOLATIONS") << " ("
      << checks << " checks";
  for (IntegrityTier tier : {IntegrityTier::kManifest, IntegrityTier::kJournal,
                             IntegrityTier::kDeep}) {
    if (RanTier(tier)) out << ", " << IntegrityTierName(tier);
  }
  if (deep_truncated) out << ", deep tier truncated";
  out << ")\n";
  for (const IntegrityViolation& v : violations) {
    out << "  [" << IntegrityTierName(v.tier) << "/"
        << IntegrityViolationKindName(v.kind) << "] " << v.object << ": "
        << v.detail << "\n";
  }
  return out.str();
}

std::string IntegrityReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("clean").Value(clean());
  w.Key("checks").Value(static_cast<uint64_t>(checks));
  w.Key("deep_truncated").Value(deep_truncated);
  w.Key("tiers_run").BeginArray();
  for (IntegrityTier tier : {IntegrityTier::kManifest, IntegrityTier::kJournal,
                             IntegrityTier::kDeep}) {
    if (RanTier(tier)) w.Value(IntegrityTierName(tier));
  }
  w.EndArray();
  w.Key("violations").BeginArray();
  for (const IntegrityViolation& v : violations) {
    w.BeginObject();
    w.Key("kind").Value(IntegrityViolationKindName(v.kind));
    w.Key("tier").Value(IntegrityTierName(v.tier));
    w.Key("object").Value(v.object);
    w.Key("detail").Value(v.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

IntegrityReport VerifySnapshotDir(const std::string& snapshot_dir,
                                  const VerifyOptions& options) {
  io::FileSystem& fs = io::Resolve(options.fs);
  IntegrityReport report;
  report.tiers_run |= 1 << static_cast<int>(IntegrityTier::kManifest);

  ++report.checks;
  if (!fs.Exists(snapshot_dir)) {
    report.Add(IntegrityTier::kManifest,
               IntegrityViolationKind::kSnapshotMissing, snapshot_dir,
               "snapshot directory does not exist");
    return report;
  }

  std::string manifest_text, read_error;
  ++report.checks;
  if (fs.Read(snapshot_dir + "/MANIFEST", &manifest_text, &read_error) !=
      io::ReadStatus::kOk) {
    report.Add(IntegrityTier::kManifest,
               IntegrityViolationKind::kManifestMissing,
               snapshot_dir + "/MANIFEST", read_error);
    return report;
  }
  SnapshotManifest manifest;
  std::string parse_error;
  ++report.checks;
  if (!ParseSnapshotManifest(manifest_text, &manifest, &parse_error)) {
    report.Add(IntegrityTier::kManifest,
               IntegrityViolationKind::kManifestMalformed,
               snapshot_dir + "/MANIFEST", parse_error);
    return report;
  }

  std::string cfg_text;
  for (const char* name : {"config.ini", "database.gspan", "patterns.gspan"}) {
    if (report.violations.size() >= options.max_violations) break;
    ++report.checks;
    auto it = manifest.file_crc.find(name);
    if (it == manifest.file_crc.end()) {
      report.Add(IntegrityTier::kManifest,
                 IntegrityViolationKind::kManifestMalformed,
                 snapshot_dir + "/MANIFEST",
                 std::string("no checksum entry for ") + name);
      continue;
    }
    std::string content, file_error;
    if (fs.Read(snapshot_dir + "/" + name, &content, &file_error) !=
        io::ReadStatus::kOk) {
      report.Add(IntegrityTier::kManifest, IntegrityViolationKind::kFileMissing,
                 snapshot_dir + "/" + name, file_error);
      continue;
    }
    std::string actual = Crc32Hex(Crc32(content));
    if (actual != it->second) {
      report.Add(IntegrityTier::kManifest,
                 IntegrityViolationKind::kChecksumMismatch,
                 snapshot_dir + "/" + name,
                 "manifest " + it->second + ", actual " + actual);
      continue;
    }
    if (std::string(name) == "config.ini") cfg_text = content;
  }

  // lineage.ledger is optional (absent from pre-lineage snapshots), but a
  // manifest that names it promises an intact, parseable ledger.
  if (manifest.file_crc.count("lineage.ledger") != 0 &&
      report.violations.size() < options.max_violations) {
    ++report.checks;
    const std::string path = snapshot_dir + "/lineage.ledger";
    std::string content, file_error;
    if (fs.Read(path, &content, &file_error) != io::ReadStatus::kOk) {
      report.Add(IntegrityTier::kManifest, IntegrityViolationKind::kFileMissing,
                 path, file_error);
    } else {
      std::string actual = Crc32Hex(Crc32(content));
      const std::string& expected = manifest.file_crc.at("lineage.ledger");
      if (actual != expected) {
        report.Add(IntegrityTier::kManifest,
                   IntegrityViolationKind::kChecksumMismatch, path,
                   "manifest " + expected + ", actual " + actual);
      } else {
        obs::PatternLedger ledger;
        std::string ledger_error;
        if (!ledger.Deserialize(content, &ledger_error)) {
          report.Add(IntegrityTier::kManifest,
                     IntegrityViolationKind::kManifestMalformed, path,
                     "unparseable lineage ledger: " + ledger_error);
        }
      }
    }
  }

  if (!cfg_text.empty()) {
    ++report.checks;
    MidasConfig config;
    std::istringstream in(cfg_text);
    if (!ReadConfig(in, &config)) {
      report.Add(IntegrityTier::kManifest,
                 IntegrityViolationKind::kConfigInvalid,
                 snapshot_dir + "/config.ini", "malformed config");
    } else {
      for (const std::string& problem : ValidateConfig(config)) {
        if (problem.rfind("warning:", 0) != 0) {
          report.Add(IntegrityTier::kManifest,
                     IntegrityViolationKind::kConfigInvalid,
                     snapshot_dir + "/config.ini", problem);
        }
      }
    }
  }
  return report;
}

IntegrityReport VerifyJournal(const std::string& journal_path,
                              uint64_t snapshot_seq,
                              const VerifyOptions& options) {
  IntegrityReport report;
  report.tiers_run |= 1 << static_cast<int>(IntegrityTier::kJournal);

  LabelDictionary scratch;
  ++report.checks;
  JournalReadResult result = ReadJournal(journal_path, scratch, options.fs);
  if (!result.ok) {
    report.Add(IntegrityTier::kJournal,
               IntegrityViolationKind::kJournalUnreadable, journal_path,
               result.error);
    return report;
  }
  if (result.tail_truncated) {
    report.Add(IntegrityTier::kJournal,
               IntegrityViolationKind::kJournalTornTail, journal_path,
               result.error);
  }
  // Continuity: committed rounds beyond the snapshot must advance one round
  // at a time — a gap means records were lost while later ones survived,
  // which no crash interleaving of an append-only fsync'd log produces.
  uint64_t expected = snapshot_seq;
  for (const JournalRound& round : result.rounds) {
    if (!round.committed || round.seq <= snapshot_seq) continue;
    ++report.checks;
    if (round.seq != expected + 1) {
      report.Add(IntegrityTier::kJournal, IntegrityViolationKind::kJournalGap,
                 journal_path,
                 "committed round seq " + std::to_string(round.seq) +
                     " follows seq " + std::to_string(expected));
    }
    expected = round.seq;
  }
  return report;
}

IntegrityReport VerifyEngineDir(const std::string& engine_dir,
                                const VerifyOptions& options) {
  io::FileSystem& fs = io::Resolve(options.fs);
  const std::string snapshot = engine_dir + "/snapshot";

  // Honor RestoreEngine's resolution order: a dirty primary with a clean
  // .tmp/.old fallback still restores, so only the best candidate's report
  // is the verdict. The clean candidate's manifest also provides the
  // journal-continuity baseline.
  IntegrityReport disk;
  uint64_t snapshot_seq = 0;
  bool first = true;
  for (const std::string& candidate :
       {snapshot, snapshot + ".tmp", snapshot + ".old"}) {
    if (!fs.Exists(candidate) && !first) continue;
    first = false;
    IntegrityReport attempt = VerifySnapshotDir(candidate, options);
    if (attempt.clean()) {
      std::string manifest_text, ignored;
      SnapshotManifest manifest;
      if (fs.Read(candidate + "/MANIFEST", &manifest_text, &ignored) ==
              io::ReadStatus::kOk &&
          ParseSnapshotManifest(manifest_text, &manifest, &ignored)) {
        snapshot_seq = manifest.snapshot_seq;
      }
      attempt.checks += disk.checks;
      disk = std::move(attempt);
      break;
    }
    if (disk.tiers_run == 0) {
      disk = std::move(attempt);  // primary's violations are the verdict
    } else {
      disk.checks += attempt.checks;
    }
  }

  if (static_cast<int>(options.level) >=
      static_cast<int>(IntegrityTier::kJournal)) {
    disk.Merge(VerifyJournal(engine_dir + "/journal.log", snapshot_seq,
                             options));
  }
  return disk;
}

void VerifyEngineDeep(const MidasEngine& engine, const VerifyOptions& options,
                      IntegrityReport* report) {
  report->tiers_run |= 1 << static_cast<int>(IntegrityTier::kDeep);
  std::vector<const CannedPattern*> patterns = PatternsInOrder(engine);
  const size_t n = patterns.size();
  if (n == 0) return;

  // One shared budget across the pool's workers: Charge() with the full
  // deadline stride forces a wall-clock check per pattern, so overshoot is
  // bounded by a single pattern's verification cost.
  ExecBudget budget = options.deep_deadline_ms > 0.0
                          ? ExecBudget::TimeLimitMs(options.deep_deadline_ms)
                          : ExecBudget::Unlimited();
  std::vector<std::vector<IntegrityViolation>> found(n);
  std::vector<char> checked(n, 0);
  ParallelFor(engine.pool(), n, [&](size_t i) {
    if (!budget.Charge(ExecBudget::kDeadlineStride)) return;
    checked[i] = 1;
    CheckPattern(engine, *patterns[i], &found[i]);
  });

  for (size_t i = 0; i < n; ++i) {
    if (!checked[i]) {
      report->deep_truncated = true;
      continue;
    }
    report->checks += 3;  // coverage, metrics, index membership
    for (IntegrityViolation& v : found[i]) {
      if (report->violations.size() >= options.max_violations) break;
      report->violations.push_back(std::move(v));
    }
  }
}

size_t VerifyPatternsSlice(const MidasEngine& engine, size_t cursor,
                           double deadline_ms, IntegrityReport* report) {
  report->tiers_run |= 1 << static_cast<int>(IntegrityTier::kDeep);
  std::vector<const CannedPattern*> patterns = PatternsInOrder(engine);
  const double start_ms = NowMs();
  if (cursor >= patterns.size()) cursor = 0;
  size_t i = cursor;
  for (; i < patterns.size(); ++i) {
    if (deadline_ms > 0.0 && i > cursor && NowMs() - start_ms > deadline_ms) {
      return i;  // resume here next tick
    }
    std::vector<IntegrityViolation> found;
    CheckPattern(engine, *patterns[i], &found);
    report->checks += 3;
    for (IntegrityViolation& v : found) {
      report->violations.push_back(std::move(v));
    }
  }
  return 0;  // full lap complete
}

void VerifyPanelAgreement(const MidasEngine& engine,
                          const PatternSet& published, uint64_t published_seq,
                          IntegrityReport* report) {
  // A published panel from an earlier round is reader lag, not corruption.
  if (published_seq != engine.round_seq()) return;
  report->tiers_run |= 1 << static_cast<int>(IntegrityTier::kDeep);
  ++report->checks;
  if (published.size() != engine.patterns().size()) {
    report->Add(IntegrityTier::kDeep,
                IntegrityViolationKind::kPanelDisagreement, "panel",
                "published panel has " + std::to_string(published.size()) +
                    " patterns, engine has " +
                    std::to_string(engine.patterns().size()));
    return;
  }
  for (const auto& [id, p] : engine.patterns().patterns()) {
    const CannedPattern* pub = published.Find(id);
    if (pub == nullptr) {
      report->Add(IntegrityTier::kDeep,
                  IntegrityViolationKind::kPanelDisagreement,
                  "pattern " + std::to_string(id),
                  "present in engine, missing from published panel");
      continue;
    }
    if (!(pub->coverage == p.coverage)) {
      report->Add(IntegrityTier::kDeep,
                  IntegrityViolationKind::kPanelDisagreement,
                  "pattern " + std::to_string(id),
                  "published coverage diverges from engine coverage");
    }
  }
}

IntegrityReport VerifyEngineState(const std::string& engine_dir,
                                  const VerifyOptions& options) {
  IntegrityReport report = VerifyEngineDir(engine_dir, options);
  if (static_cast<int>(options.level) <
      static_cast<int>(IntegrityTier::kDeep)) {
    return report;
  }
  RecoverInfo info;
  auto engine = RecoverEngine(engine_dir, &info, options.fs);
  ++report.checks;
  if (engine == nullptr) {
    report.tiers_run |= 1 << static_cast<int>(IntegrityTier::kDeep);
    report.Add(IntegrityTier::kDeep, IntegrityViolationKind::kRestoreFailed,
               engine_dir, info.error);
    return report;
  }
  VerifyEngineDeep(*engine, options, &report);
  return report;
}

}  // namespace midas
