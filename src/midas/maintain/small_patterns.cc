#include "midas/maintain/small_patterns.h"

#include <algorithm>

namespace midas {

void SmallPatternPanel::Refresh(const FctSet& fcts) {
  patterns_.clear();
  supports_.clear();
  size_t db_size = fcts.database_size();
  if (db_size == 0) return;

  // 1-edge patterns: top-k frequent edges by support.
  std::vector<std::pair<size_t, EdgeLabelPair>> edges;
  for (const auto& [lp, occ] : fcts.FrequentEdges()) {
    edges.push_back({occ->size(), lp});
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return b.second < a.second;  // deterministic tie-break
  });
  for (size_t i = 0; i < edges.size() && i < config_.max_edges_patterns;
       ++i) {
    Graph g;
    VertexId a = g.AddVertex(edges[i].second.first);
    VertexId b = g.AddVertex(edges[i].second.second);
    g.AddEdge(a, b);
    patterns_.push_back(std::move(g));
    supports_.push_back(static_cast<double>(edges[i].first) /
                        static_cast<double>(db_size));
  }

  // 2-edge patterns: top-k frequent wedges from the pool.
  std::vector<const FctEntry*> wedges;
  for (const FctEntry* e : fcts.PoolEntries()) {
    if (e->frequent && e->tree.NumEdges() == 2) wedges.push_back(e);
  }
  std::sort(wedges.begin(), wedges.end(),
            [](const FctEntry* a, const FctEntry* b) {
              if (a->occurrences.size() != b->occurrences.size()) {
                return a->occurrences.size() > b->occurrences.size();
              }
              return a->canon < b->canon;
            });
  for (size_t i = 0; i < wedges.size() && i < config_.max_wedge_patterns;
       ++i) {
    patterns_.push_back(wedges[i]->tree);
    supports_.push_back(static_cast<double>(wedges[i]->occurrences.size()) /
                        static_cast<double>(db_size));
  }
}

}  // namespace midas
