#ifndef MIDAS_MAINTAIN_REPORT_H_
#define MIDAS_MAINTAIN_REPORT_H_

#include <string>

#include "midas/maintain/midas.h"

namespace midas {

/// Renders the engine's current state as a human-readable report: the
/// pattern panel (with per-pattern metrics), set-level quality, the small-
/// pattern companion panel, and the maintenance-history summary. Used by
/// the evolving_stream example; deployments would surface the same text in
/// an admin view.
std::string RenderEngineReport(const MidasEngine& engine);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_REPORT_H_
