#ifndef MIDAS_MAINTAIN_SNAPSHOT_H_
#define MIDAS_MAINTAIN_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "midas/common/io.h"
#include "midas/maintain/midas.h"

namespace midas {

/// Engine persistence: a snapshot directory holds the database
/// (database.gspan), the canned pattern panel (patterns.gspan), the
/// configuration (config.ini, key=value) and a MANIFEST with a CRC32 per
/// file plus the round sequence number and the graph-id allocator position.
/// Restoring rebuilds the derived structures (FCT pool, clusters, CSGs,
/// indices) deterministically from the config's seed and reinstalls the
/// saved panel — a service restart resumes exactly where it stopped,
/// without re-running selection.
///
/// Snapshots are written failure-atomically: everything lands in
/// `<dir>.tmp` first and only a fully written, checksummed tmp directory is
/// renamed into place. A crash mid-save leaves the previous snapshot (or
/// nothing) — never a half-written directory that restores silently wrong.
/// Combined with the write-ahead journal (journal.h), RecoverEngine brings
/// an engine back to exactly the last *committed* maintenance round.

/// Parsed MANIFEST contents (exposed for the integrity verifier and the
/// fsck CLI; SaveSnapshot writes it, RestoreEngine validates against it).
struct SnapshotManifest {
  uint64_t snapshot_seq = 0;
  GraphId next_graph_id = 0;
  /// Pattern-id allocator position (0 in pre-lineage snapshots, which
  /// carried no lineage.ledger either). Restored so post-recovery births
  /// never reuse an id already present in the provenance ledger.
  PatternId next_pattern_id = 0;
  std::map<std::string, std::string> file_crc;  // name -> crc32 hex
};

/// Parses a MANIFEST file body. Unknown keys are skipped (forward
/// compatibility); malformed known keys fail.
bool ParseSnapshotManifest(const std::string& text, SnapshotManifest* manifest,
                           std::string* error);

/// Key=value serialization of the tunable configuration.
void WriteConfig(const MidasConfig& config, std::ostream& out);
/// Parses a config; unknown keys are ignored (forward compatibility),
/// malformed lines fail. Fields absent from the file keep their defaults.
bool ReadConfig(std::istream& in, MidasConfig* config);

/// Atomically replaces the snapshot at `dir`: writes database.gspan,
/// patterns.gspan, config.ini and MANIFEST into `<dir>.tmp`, fsyncs, then
/// renames tmp into place (the previous snapshot is kept at `<dir>.old`
/// during the swap and removed afterwards), then fsyncs the parent
/// directory — rename(2) alone is not durable on ext4/xfs. Returns false on
/// I/O failure with a diagnostic in *error; the existing snapshot is
/// untouched in that case. All I/O goes through `fs` (nullptr = the real
/// POSIX backend).
bool SaveSnapshot(const MidasEngine& engine, const std::string& dir,
                  std::string* error, io::FileSystem* fs = nullptr);
bool SaveSnapshot(const MidasEngine& engine, const std::string& dir);

/// Restores an engine from a snapshot directory: validates the MANIFEST
/// (per-file CRC32), loads database (preserving graph ids) and config,
/// enforces ValidateConfig (a snapshot that fails validation is refused —
/// errors only; "warning:" entries pass), Initialize()s, reinstalls the
/// saved panel and fast-forwards round_seq()/the id allocator. Resolution
/// order tolerates a crash mid-save: `dir`, then `dir.tmp` (complete but
/// unrenamed), then `dir.old` (swap interrupted). Returns nullptr on
/// failure with a diagnostic in *error.
std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir,
                                           std::string* error,
                                           io::FileSystem* fs = nullptr);
std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir);

/// What RecoverEngine did (for logs/tests).
struct RecoverInfo {
  size_t replayed = 0;          ///< committed journal rounds re-applied
  size_t dropped_inflight = 0;  ///< trailing batches without a commit
  bool tail_truncated = false;  ///< journal had a torn/corrupt tail
  std::string error;            ///< set when recovery returned nullptr
};

/// Crash recovery for the engine-directory layout used by SaveCheckpoint:
/// `<engine_dir>/snapshot` + `<engine_dir>/journal.log`. Restores the
/// snapshot, then replays every *committed* journal round with seq beyond
/// the snapshot (batch re-applied structurally, committed panel reinstalled
/// verbatim — replay never re-runs selection, so it is deterministic). A
/// trailing in-flight round (batch record without commit) is dropped, which
/// is the at-most-one-round loss guarantee. Returns nullptr on failure.
std::unique_ptr<MidasEngine> RecoverEngine(const std::string& engine_dir,
                                           RecoverInfo* info = nullptr,
                                           io::FileSystem* fs = nullptr);

/// Checkpoints an engine into the RecoverEngine layout: snapshots into
/// `<engine_dir>/snapshot` and, if a journal is attached, truncates it (the
/// journaled history is now redundant — the snapshot carries it).
bool SaveCheckpoint(const MidasEngine& engine, const std::string& engine_dir,
                    std::string* error = nullptr,
                    io::FileSystem* fs = nullptr);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_SNAPSHOT_H_
