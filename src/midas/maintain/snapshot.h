#ifndef MIDAS_MAINTAIN_SNAPSHOT_H_
#define MIDAS_MAINTAIN_SNAPSHOT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "midas/maintain/midas.h"

namespace midas {

/// Engine persistence: a snapshot directory holds the database
/// (database.gspan), the canned pattern panel (patterns.gspan) and the
/// configuration (config.ini, key=value). Restoring rebuilds the derived
/// structures (FCT pool, clusters, CSGs, indices) deterministically from
/// the config's seed and reinstalls the saved panel — a service restart
/// resumes exactly where it stopped, without re-running selection.

/// Key=value serialization of the tunable configuration.
void WriteConfig(const MidasConfig& config, std::ostream& out);
/// Parses a config; unknown keys are ignored (forward compatibility),
/// malformed lines fail. Fields absent from the file keep their defaults.
bool ReadConfig(std::istream& in, MidasConfig* config);

/// Writes database.gspan, patterns.gspan and config.ini into `dir`
/// (created if needed). Returns false on I/O failure.
bool SaveSnapshot(const MidasEngine& engine, const std::string& dir);

/// Restores an engine from a snapshot directory: loads the database and
/// config, Initialize()s, then replaces the freshly selected panel with the
/// saved one. Returns nullptr on failure.
std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_SNAPSHOT_H_
