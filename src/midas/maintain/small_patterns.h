#ifndef MIDAS_MAINTAIN_SMALL_PATTERNS_H_
#define MIDAS_MAINTAIN_SMALL_PATTERNS_H_

#include <vector>

#include "midas/mining/fct_set.h"

namespace midas {

/// Maintenance of canned patterns with η_min <= 2 (the case Definition 3.1
/// excludes and the paper relegates to its technical report as
/// "straightforward").
///
/// Patterns of one or two edges are exactly the frequent edges and frequent
/// wedges (2-edge trees) of the database, so they need none of the swap
/// machinery: the maintained FCT pool already carries exact occurrence
/// lists for both universes, and the panel is simply the top-k by support
/// after every batch update.
class SmallPatternPanel {
 public:
  struct Config {
    size_t max_edges_patterns = 4;   ///< 1-edge slots on the panel
    size_t max_wedge_patterns = 4;   ///< 2-edge slots on the panel
  };

  SmallPatternPanel() = default;
  explicit SmallPatternPanel(const Config& config) : config_(config) {}

  /// Recomputes the panel from the (maintained) FCT pool. O(pool) —
  /// no isomorphism tests.
  void Refresh(const FctSet& fcts);

  /// Current small patterns, highest support first (edges before wedges).
  const std::vector<Graph>& patterns() const { return patterns_; }
  /// Support of patterns()[i] as a fraction of the database.
  const std::vector<double>& supports() const { return supports_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<Graph> patterns_;
  std::vector<double> supports_;
};

}  // namespace midas

#endif  // MIDAS_MAINTAIN_SMALL_PATTERNS_H_
