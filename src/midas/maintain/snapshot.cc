#include "midas/maintain/snapshot.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "midas/common/checksum.h"
#include "midas/common/failpoint.h"
#include "midas/common/io.h"
#include "midas/graph/graph_io.h"
#include "midas/maintain/journal.h"
#include "midas/obs/metrics.h"
#include "midas/select/pattern_io.h"

namespace midas {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

// SaveSnapshot's per-file write, with the legacy partial-write failpoint
// kept for existing crash-safety tests (FaultyFileSystem's
// io.write_file.enospc is the richer replacement).
bool WriteSnapshotFile(io::FileSystem& fs, const std::string& path,
                       const std::string& content, std::string* error) {
  if (MIDAS_FAILPOINT("snapshot.save.partial_write")) {
    // Simulate a disk filling up / kill mid-write: half the bytes land.
    // The torn file stays in the tmp directory only — SaveSnapshot reports
    // failure and never renames it into place.
    std::ofstream torn(path, std::ios::binary);
    torn.write(content.data(),
               static_cast<std::streamsize>(content.size() / 2));
    SetError(error,
             "injected partial write (failpoint snapshot.save.partial_write): " +
                 path);
    return false;
  }
  return fs.WriteFileDurable(path, content, error);
}

bool ReadFileVia(io::FileSystem& fs, const std::string& path,
                 std::string* content, std::string* error) {
  std::string read_error;
  if (fs.Read(path, content, &read_error) != io::ReadStatus::kOk) {
    SetError(error, read_error);
    return false;
  }
  return true;
}

}  // namespace

bool ParseSnapshotManifest(const std::string& text, SnapshotManifest* manifest,
                           std::string* error) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      SetError(error, "malformed MANIFEST line: " + line);
      return false;
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "snapshot_seq") {
      std::istringstream v(value);
      if (!(v >> manifest->snapshot_seq)) {
        SetError(error, "malformed snapshot_seq: " + value);
        return false;
      }
    } else if (key == "next_graph_id") {
      std::istringstream v(value);
      if (!(v >> manifest->next_graph_id)) {
        SetError(error, "malformed next_graph_id: " + value);
        return false;
      }
    } else if (key == "next_pattern_id") {
      std::istringstream v(value);
      if (!(v >> manifest->next_pattern_id)) {
        SetError(error, "malformed next_pattern_id: " + value);
        return false;
      }
    } else if (key == "file") {
      size_t eq2 = value.find('=');
      if (eq2 == std::string::npos) {
        SetError(error, "malformed file entry: " + value);
        return false;
      }
      manifest->file_crc[value.substr(0, eq2)] = value.substr(eq2 + 1);
    }
    // Unknown keys are skipped (forward compatibility).
  }
  return true;
}

namespace {

// Loads `name` from a manifest-validated snapshot directory and checks its
// CRC32 against the manifest entry.
bool ReadChecked(io::FileSystem& fs, const std::string& dir,
                 const SnapshotManifest& manifest, const std::string& name,
                 std::string* content, std::string* error) {
  auto it = manifest.file_crc.find(name);
  if (it == manifest.file_crc.end()) {
    SetError(error, dir + "/MANIFEST has no checksum for " + name);
    return false;
  }
  if (!ReadFileVia(fs, dir + "/" + name, content, error)) return false;
  std::string actual = Crc32Hex(Crc32(*content));
  if (actual != it->second) {
    SetError(error, dir + "/" + name + ": checksum mismatch (manifest " +
                        it->second + ", actual " + actual + ")");
    return false;
  }
  return true;
}

// One full restore attempt from a concrete directory.
std::unique_ptr<MidasEngine> RestoreFromDir(io::FileSystem& fs,
                                            const std::string& dir,
                                            std::string* error) {
  std::string manifest_text;
  if (!ReadFileVia(fs, dir + "/MANIFEST", &manifest_text, error)) {
    return nullptr;
  }
  SnapshotManifest manifest;
  if (!ParseSnapshotManifest(manifest_text, &manifest, error)) return nullptr;

  std::string cfg_text, db_text, pat_text;
  if (!ReadChecked(fs, dir, manifest, "config.ini", &cfg_text, error) ||
      !ReadChecked(fs, dir, manifest, "database.gspan", &db_text, error) ||
      !ReadChecked(fs, dir, manifest, "patterns.gspan", &pat_text, error)) {
    return nullptr;
  }

  MidasConfig config;
  {
    std::istringstream in(cfg_text);
    if (!ReadConfig(in, &config)) {
      SetError(error, dir + "/config.ini: malformed config");
      return nullptr;
    }
  }
  // A snapshot carrying an invalid configuration must not come back to
  // life: warnings pass, errors refuse the restore.
  for (const std::string& problem : ValidateConfig(config)) {
    if (problem.rfind("warning:", 0) != 0) {
      SetError(error, dir + "/config.ini: " + problem);
      return nullptr;
    }
  }

  GraphDatabase db;
  {
    std::istringstream in(db_text);
    GspanReadOptions options;
    options.preserve_ids = true;  // journaled deletion ids must stay valid
    std::string parse_error;
    if (!ReadDatabase(in, &db, options, &parse_error)) {
      SetError(error, dir + "/database.gspan: " + parse_error);
      return nullptr;
    }
  }
  db.RestoreNextId(manifest.next_graph_id);

  auto engine = std::make_unique<MidasEngine>(std::move(db), config);
  // Replay mode while the pieces land: Initialize must not ledger the
  // throwaway selection, and LoadPatterns must not reconcile before the
  // saved ledger is in place.
  engine->SetLineageReplay(true);
  engine->Initialize();
  {
    std::istringstream in(pat_text);
    PatternSet panel;
    // Preserve the saved pattern ids — they key the provenance ledger.
    if (!ReadPatternSet(in, engine->labels(), &panel, /*preserve_ids=*/true)) {
      SetError(error, dir + "/patterns.gspan: malformed pattern set");
      return nullptr;
    }
    engine->LoadPatterns(std::move(panel));
  }
  engine->RestoreRoundSeq(manifest.snapshot_seq);
  engine->RestorePatternIds(manifest.next_pattern_id);
  // lineage.ledger is absent from pre-lineage snapshots; its manifest entry
  // gates the read (ReadChecked refuses files without a checksum).
  if (manifest.file_crc.count("lineage.ledger") != 0) {
    std::string lineage_text;
    if (!ReadChecked(fs, dir, manifest, "lineage.ledger", &lineage_text,
                     error)) {
      return nullptr;
    }
    std::string lineage_error;
    if (!engine->lineage_mutable()->Deserialize(lineage_text,
                                                &lineage_error)) {
      SetError(error, dir + "/lineage.ledger: " + lineage_error);
      return nullptr;
    }
  }
  engine->SetLineageReplay(false);
  // Safety net for legacy snapshots (no lineage.ledger): synthesizes
  // kRestored births so every live pattern answers /lineage/<id>. A no-op
  // when the saved ledger already covers the panel.
  engine->lineage_mutable()->Reconcile(engine->patterns(),
                                       engine->round_seq());
  return engine;
}

}  // namespace

void WriteConfig(const MidasConfig& config, std::ostream& out) {
  out << "fct.sup_min=" << config.fct.sup_min << "\n"
      << "fct.max_edges=" << config.fct.max_edges << "\n"
      << "cluster.num_coarse=" << config.cluster.num_coarse << "\n"
      << "cluster.max_cluster_size=" << config.cluster.max_cluster_size
      << "\n"
      << "budget.eta_min=" << config.budget.eta_min << "\n"
      << "budget.eta_max=" << config.budget.eta_max << "\n"
      << "budget.gamma=" << config.budget.gamma << "\n"
      << "walk.num_walks=" << config.walk.num_walks << "\n"
      << "walk.walk_length=" << config.walk.walk_length << "\n"
      << "epsilon=" << config.epsilon << "\n"
      << "distance_measure=" << static_cast<int>(config.distance_measure)
      << "\n"
      << "kappa=" << config.kappa << "\n"
      << "lambda=" << config.lambda << "\n"
      << "swap.ks_alpha=" << config.swap.ks_alpha << "\n"
      << "swap.max_scans=" << config.swap.max_scans << "\n"
      << "swap.use_swap_alpha_schedule="
      << (config.swap.use_swap_alpha_schedule ? 1 : 0) << "\n"
      << "sample_cap=" << config.sample_cap << "\n"
      << "pcp_starts=" << config.pcp_starts << "\n"
      << "max_candidates=" << config.max_candidates << "\n"
      << "seed=" << config.seed << "\n"
      << "small_panel.max_edges_patterns="
      << config.small_panel.max_edges_patterns << "\n"
      << "small_panel.max_wedge_patterns="
      << config.small_panel.max_wedge_patterns << "\n"
      << "round_deadline_ms=" << config.round_deadline_ms << "\n"
      << "round_step_limit=" << config.round_step_limit << "\n"
      << "history_capacity=" << config.history_capacity << "\n";
}

bool ReadConfig(std::istream& in, MidasConfig* config) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    std::istringstream v(value);
    bool ok = true;
    if (key == "fct.sup_min") {
      ok = static_cast<bool>(v >> config->fct.sup_min);
    } else if (key == "fct.max_edges") {
      ok = static_cast<bool>(v >> config->fct.max_edges);
    } else if (key == "cluster.num_coarse") {
      ok = static_cast<bool>(v >> config->cluster.num_coarse);
    } else if (key == "cluster.max_cluster_size") {
      ok = static_cast<bool>(v >> config->cluster.max_cluster_size);
    } else if (key == "budget.eta_min") {
      ok = static_cast<bool>(v >> config->budget.eta_min);
    } else if (key == "budget.eta_max") {
      ok = static_cast<bool>(v >> config->budget.eta_max);
    } else if (key == "budget.gamma") {
      ok = static_cast<bool>(v >> config->budget.gamma);
    } else if (key == "walk.num_walks") {
      ok = static_cast<bool>(v >> config->walk.num_walks);
    } else if (key == "walk.walk_length") {
      ok = static_cast<bool>(v >> config->walk.walk_length);
    } else if (key == "epsilon") {
      ok = static_cast<bool>(v >> config->epsilon);
    } else if (key == "distance_measure") {
      int m = 0;
      ok = static_cast<bool>(v >> m);
      if (ok) config->distance_measure = static_cast<DistributionDistance>(m);
    } else if (key == "kappa") {
      ok = static_cast<bool>(v >> config->kappa);
    } else if (key == "lambda") {
      ok = static_cast<bool>(v >> config->lambda);
    } else if (key == "swap.ks_alpha") {
      ok = static_cast<bool>(v >> config->swap.ks_alpha);
    } else if (key == "swap.max_scans") {
      ok = static_cast<bool>(v >> config->swap.max_scans);
    } else if (key == "swap.use_swap_alpha_schedule") {
      int b = 0;
      ok = static_cast<bool>(v >> b);
      if (ok) config->swap.use_swap_alpha_schedule = b != 0;
    } else if (key == "sample_cap") {
      ok = static_cast<bool>(v >> config->sample_cap);
    } else if (key == "pcp_starts") {
      ok = static_cast<bool>(v >> config->pcp_starts);
    } else if (key == "max_candidates") {
      ok = static_cast<bool>(v >> config->max_candidates);
    } else if (key == "seed") {
      ok = static_cast<bool>(v >> config->seed);
    } else if (key == "small_panel.max_edges_patterns") {
      ok = static_cast<bool>(v >> config->small_panel.max_edges_patterns);
    } else if (key == "small_panel.max_wedge_patterns") {
      ok = static_cast<bool>(v >> config->small_panel.max_wedge_patterns);
    } else if (key == "round_deadline_ms") {
      ok = static_cast<bool>(v >> config->round_deadline_ms);
    } else if (key == "round_step_limit") {
      ok = static_cast<bool>(v >> config->round_step_limit);
    } else if (key == "history_capacity") {
      ok = static_cast<bool>(v >> config->history_capacity);
    }
    // Unknown keys are skipped (forward compatibility).
    if (!ok) return false;
  }
  return true;
}

bool SaveSnapshot(const MidasEngine& engine, const std::string& dir,
                  std::string* error, io::FileSystem* fs_param) {
  io::FileSystem& fs = io::Resolve(fs_param);
  const std::string tmp = dir + ".tmp";
  const std::string old = dir + ".old";

  // A stale tmp is always a leftover from an interrupted save; discard it.
  if (!fs.RemoveAll(tmp, error)) return false;
  if (!fs.CreateDirs(tmp, error)) return false;

  std::ostringstream db_out;
  WriteDatabase(engine.db(), db_out);
  std::ostringstream pat_out;
  WritePatternSet(engine.patterns(), engine.db().labels(), pat_out);
  std::ostringstream cfg_out;
  WriteConfig(engine.config(), cfg_out);

  const std::pair<const char*, std::string> files[] = {
      {"database.gspan", db_out.str()},
      {"patterns.gspan", pat_out.str()},
      {"config.ini", cfg_out.str()},
      {"lineage.ledger", engine.lineage().Serialize()},
  };

  std::ostringstream manifest;
  manifest << "snapshot_seq=" << engine.round_seq() << "\n"
           << "next_graph_id=" << engine.db().next_id() << "\n"
           << "next_pattern_id=" << engine.patterns().next_id() << "\n";
  for (const auto& [name, content] : files) {
    if (!WriteSnapshotFile(fs, tmp + "/" + name, content, error)) {
      return false;
    }
    manifest << "file=" << name << "=" << Crc32Hex(Crc32(content)) << "\n";
  }
  // MANIFEST last: its presence certifies the directory is complete.
  if (!WriteSnapshotFile(fs, tmp + "/MANIFEST", manifest.str(), error)) {
    return false;
  }
  if (!fs.SyncDir(tmp, error)) return false;

  // Crash site between "tmp is complete" and "tmp is live". RestoreEngine's
  // dir -> dir.tmp -> dir.old resolution handles every interleaving.
  MIDAS_FAILPOINT_ABORT("snapshot.save.before_rename");

  if (!fs.RemoveAll(old, error)) return false;
  if (fs.Exists(dir)) {
    if (!fs.Rename(dir, old, error)) return false;
  }
  if (!fs.Rename(tmp, dir, error)) return false;
  // The renames only became durable once the *parent* directory is synced —
  // rename(2) alone can be rolled back by a power cut on ext4/xfs, which
  // would resurrect the old (or no) snapshot after SaveSnapshot already
  // reported success. Sync before removing `.old` so the previous snapshot
  // still exists if the sync fails.
  if (!fs.SyncDir(io::ParentDir(dir), error)) return false;
  if (!fs.RemoveAll(old, error)) return false;
  return true;
}

bool SaveSnapshot(const MidasEngine& engine, const std::string& dir) {
  return SaveSnapshot(engine, dir, nullptr, nullptr);
}

std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir,
                                           std::string* error,
                                           io::FileSystem* fs_param) {
  io::FileSystem& fs = io::Resolve(fs_param);
  // Resolution order mirrors SaveSnapshot's rename dance: the live
  // directory first, then a complete-but-unrenamed tmp (crash right before
  // the swap), then the displaced previous snapshot (crash mid-swap).
  std::string first_error;
  for (const std::string candidate : {dir, dir + ".tmp", dir + ".old"}) {
    if (!fs.Exists(candidate)) continue;
    std::string attempt_error;
    if (auto engine = RestoreFromDir(fs, candidate, &attempt_error)) {
      return engine;
    }
    if (first_error.empty()) first_error = attempt_error;
  }
  SetError(error, first_error.empty() ? "no snapshot found at " + dir
                                      : first_error);
  return nullptr;
}

std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir) {
  return RestoreEngine(dir, nullptr);
}

std::unique_ptr<MidasEngine> RecoverEngine(const std::string& engine_dir,
                                           RecoverInfo* info,
                                           io::FileSystem* fs) {
  RecoverInfo local;
  RecoverInfo* out = info != nullptr ? info : &local;
  *out = RecoverInfo{};

  std::string restore_error;
  auto engine = RestoreEngine(engine_dir + "/snapshot", &restore_error, fs);
  if (engine == nullptr) {
    out->error = "snapshot restore failed: " + restore_error;
    return nullptr;
  }

  JournalReadResult journal =
      ReadJournal(engine_dir + "/journal.log", engine->labels(), fs);
  if (!journal.ok) {
    out->error = "journal read failed: " + journal.error;
    return nullptr;
  }
  out->tail_truncated = journal.tail_truncated;

  // Replay committed rounds beyond the snapshot. Structures are re-derived
  // by re-applying the batch (kNoMaintain: no selection/swap — replay must
  // not redo budget-dependent work), then the committed panel — the exact
  // set the original round produced — is reinstalled verbatim.
  size_t last_committed = journal.rounds.size();
  // Lineage during replay comes from the journaled @L deltas, applied
  // verbatim — live recording stays suppressed so replay cannot
  // double-count a round the original writer already ledgered.
  engine->SetLineageReplay(true);
  for (size_t i = 0; i < journal.rounds.size(); ++i) {
    JournalRound& round = journal.rounds[i];
    if (!round.committed) {
      ++out->dropped_inflight;
      continue;
    }
    if (round.seq <= engine->round_seq()) continue;  // already in snapshot
    engine->ApplyUpdate(round.batch, MaintenanceMode::kNoMaintain);
    if (!round.lineage_delta.empty()) {
      PatternId next_pattern_id = 0;
      std::string delta_error;
      if (engine->lineage_mutable()->ApplyDelta(round.lineage_delta,
                                                &next_pattern_id,
                                                &delta_error)) {
        engine->RestorePatternIds(next_pattern_id);
      }
      // An unparseable delta is dropped; the Reconcile below squares the
      // ledger with the final panel so recovery still succeeds.
    }
    ++out->replayed;
    last_committed = i;
  }
  if (last_committed < journal.rounds.size()) {
    engine->LoadPatterns(std::move(journal.rounds[last_committed].panel));
  }
  engine->SetLineageReplay(false);
  // No-op when every replayed round carried its @L delta (ids preserved,
  // ledger-live == panel); synthesizes kRestored/kRemoved events for
  // legacy journals written before lineage existed.
  engine->lineage_mutable()->Reconcile(engine->patterns(),
                                       engine->round_seq());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    if (out->replayed > 0) {
      reg.GetCounter("midas_recovery_replayed_batches")
          ->Increment(out->replayed);
    }
    if (out->dropped_inflight > 0) {
      reg.GetCounter("midas_recovery_dropped_inflight_total")
          ->Increment(out->dropped_inflight);
    }
  }
  return engine;
}

bool SaveCheckpoint(const MidasEngine& engine, const std::string& engine_dir,
                    std::string* error, io::FileSystem* fs) {
  if (!io::Resolve(fs).CreateDirs(engine_dir, error)) return false;
  if (!SaveSnapshot(engine, engine_dir + "/snapshot", error, fs)) {
    return false;
  }
  UpdateJournal* journal = engine.journal();
  if (journal != nullptr && journal->is_open()) {
    return journal->Reset(error);
  }
  return true;
}

}  // namespace midas
