#include "midas/maintain/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "midas/graph/graph_io.h"
#include "midas/select/pattern_io.h"

namespace midas {

void WriteConfig(const MidasConfig& config, std::ostream& out) {
  out << "fct.sup_min=" << config.fct.sup_min << "\n"
      << "fct.max_edges=" << config.fct.max_edges << "\n"
      << "cluster.num_coarse=" << config.cluster.num_coarse << "\n"
      << "cluster.max_cluster_size=" << config.cluster.max_cluster_size
      << "\n"
      << "budget.eta_min=" << config.budget.eta_min << "\n"
      << "budget.eta_max=" << config.budget.eta_max << "\n"
      << "budget.gamma=" << config.budget.gamma << "\n"
      << "walk.num_walks=" << config.walk.num_walks << "\n"
      << "walk.walk_length=" << config.walk.walk_length << "\n"
      << "epsilon=" << config.epsilon << "\n"
      << "distance_measure=" << static_cast<int>(config.distance_measure)
      << "\n"
      << "kappa=" << config.kappa << "\n"
      << "lambda=" << config.lambda << "\n"
      << "swap.ks_alpha=" << config.swap.ks_alpha << "\n"
      << "swap.max_scans=" << config.swap.max_scans << "\n"
      << "swap.use_swap_alpha_schedule="
      << (config.swap.use_swap_alpha_schedule ? 1 : 0) << "\n"
      << "sample_cap=" << config.sample_cap << "\n"
      << "pcp_starts=" << config.pcp_starts << "\n"
      << "max_candidates=" << config.max_candidates << "\n"
      << "seed=" << config.seed << "\n"
      << "small_panel.max_edges_patterns="
      << config.small_panel.max_edges_patterns << "\n"
      << "small_panel.max_wedge_patterns="
      << config.small_panel.max_wedge_patterns << "\n";
}

bool ReadConfig(std::istream& in, MidasConfig* config) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    std::istringstream v(value);
    bool ok = true;
    if (key == "fct.sup_min") {
      ok = static_cast<bool>(v >> config->fct.sup_min);
    } else if (key == "fct.max_edges") {
      ok = static_cast<bool>(v >> config->fct.max_edges);
    } else if (key == "cluster.num_coarse") {
      ok = static_cast<bool>(v >> config->cluster.num_coarse);
    } else if (key == "cluster.max_cluster_size") {
      ok = static_cast<bool>(v >> config->cluster.max_cluster_size);
    } else if (key == "budget.eta_min") {
      ok = static_cast<bool>(v >> config->budget.eta_min);
    } else if (key == "budget.eta_max") {
      ok = static_cast<bool>(v >> config->budget.eta_max);
    } else if (key == "budget.gamma") {
      ok = static_cast<bool>(v >> config->budget.gamma);
    } else if (key == "walk.num_walks") {
      ok = static_cast<bool>(v >> config->walk.num_walks);
    } else if (key == "walk.walk_length") {
      ok = static_cast<bool>(v >> config->walk.walk_length);
    } else if (key == "epsilon") {
      ok = static_cast<bool>(v >> config->epsilon);
    } else if (key == "distance_measure") {
      int m = 0;
      ok = static_cast<bool>(v >> m);
      if (ok) config->distance_measure = static_cast<DistributionDistance>(m);
    } else if (key == "kappa") {
      ok = static_cast<bool>(v >> config->kappa);
    } else if (key == "lambda") {
      ok = static_cast<bool>(v >> config->lambda);
    } else if (key == "swap.ks_alpha") {
      ok = static_cast<bool>(v >> config->swap.ks_alpha);
    } else if (key == "swap.max_scans") {
      ok = static_cast<bool>(v >> config->swap.max_scans);
    } else if (key == "swap.use_swap_alpha_schedule") {
      int b = 0;
      ok = static_cast<bool>(v >> b);
      if (ok) config->swap.use_swap_alpha_schedule = b != 0;
    } else if (key == "sample_cap") {
      ok = static_cast<bool>(v >> config->sample_cap);
    } else if (key == "pcp_starts") {
      ok = static_cast<bool>(v >> config->pcp_starts);
    } else if (key == "max_candidates") {
      ok = static_cast<bool>(v >> config->max_candidates);
    } else if (key == "seed") {
      ok = static_cast<bool>(v >> config->seed);
    } else if (key == "small_panel.max_edges_patterns") {
      ok = static_cast<bool>(v >> config->small_panel.max_edges_patterns);
    } else if (key == "small_panel.max_wedge_patterns") {
      ok = static_cast<bool>(v >> config->small_panel.max_wedge_patterns);
    }
    // Unknown keys are skipped (forward compatibility).
    if (!ok) return false;
  }
  return true;
}

bool SaveSnapshot(const MidasEngine& engine, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ofstream db_out(dir + "/database.gspan");
  if (!db_out) return false;
  WriteDatabase(engine.db(), db_out);

  std::ofstream pat_out(dir + "/patterns.gspan");
  if (!pat_out) return false;
  WritePatternSet(engine.patterns(), engine.db().labels(), pat_out);

  std::ofstream cfg_out(dir + "/config.ini");
  if (!cfg_out) return false;
  WriteConfig(engine.config(), cfg_out);
  return db_out.good() && pat_out.good() && cfg_out.good();
}

std::unique_ptr<MidasEngine> RestoreEngine(const std::string& dir) {
  MidasConfig config;
  {
    std::ifstream in(dir + "/config.ini");
    if (!in || !ReadConfig(in, &config)) return nullptr;
  }
  GraphDatabase db;
  {
    std::ifstream in(dir + "/database.gspan");
    if (!in || !ReadDatabase(in, &db)) return nullptr;
  }
  auto engine = std::make_unique<MidasEngine>(std::move(db), config);
  engine->Initialize();
  {
    std::ifstream in(dir + "/patterns.gspan");
    if (!in) return nullptr;
    PatternSet panel;
    if (!ReadPatternSet(in, engine->labels(), &panel)) return nullptr;
    engine->LoadPatterns(std::move(panel));
  }
  return engine;
}

}  // namespace midas
