#include "midas/maintain/journal.h"

#include <sstream>

#include "midas/common/checksum.h"
#include "midas/common/failpoint.h"
#include "midas/common/io.h"
#include "midas/graph/graph_io.h"
#include "midas/obs/metrics.h"
#include "midas/select/pattern_io.h"

namespace midas {
namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string SerializeBatch(const BatchUpdate& batch,
                           const LabelDictionary& dict) {
  std::ostringstream out;
  out << "deletions " << batch.deletions.size() << "\n";
  if (!batch.deletions.empty()) {
    for (size_t i = 0; i < batch.deletions.size(); ++i) {
      out << (i == 0 ? "" : " ") << batch.deletions[i];
    }
    out << "\n";
  }
  for (size_t i = 0; i < batch.insertions.size(); ++i) {
    WriteGraph(batch.insertions[i], dict, static_cast<long>(i), out);
  }
  return out.str();
}

bool ParseBatchPayload(const std::string& payload, LabelDictionary& dict,
                       BatchUpdate* batch, std::string* error) {
  std::istringstream in(payload);
  std::string tag;
  size_t num_deletions = 0;
  if (!(in >> tag >> num_deletions) || tag != "deletions") {
    SetError(error, "batch payload missing 'deletions' header");
    return false;
  }
  for (size_t i = 0; i < num_deletions; ++i) {
    GraphId id = 0;
    if (!(in >> id)) {
      SetError(error, "batch payload truncated deletion list");
      return false;
    }
    batch->deletions.push_back(id);
  }
  // Insertions: the remainder is gspan text. Parse into a scratch database
  // (own dictionary), then remap labels by name into the caller's.
  GraphDatabase scratch;
  std::string parse_error;
  if (!ReadDatabase(in, &scratch, &parse_error)) {
    SetError(error, "batch payload insertions: " + parse_error);
    return false;
  }
  for (const auto& [id, g] : scratch.graphs()) {
    batch->insertions.push_back(RemapLabels(g, scratch.labels(), dict));
  }
  return true;
}

}  // namespace

UpdateJournal::~UpdateJournal() { Close(); }

bool UpdateJournal::Open(const std::string& path, std::string* error,
                         io::FileSystem* fs) {
  Close();
  io::FileSystem& resolved = io::Resolve(fs);
  auto file = resolved.OpenAppend(path, error);
  if (file == nullptr) return false;
  // The journal file's *name* must be durable before the first record is:
  // otherwise a crash after AppendBatch could lose the whole file while the
  // engine believes the round was journaled.
  if (!resolved.SyncDir(io::ParentDir(path), error)) return false;
  file_ = std::move(file);
  fs_ = &resolved;
  path_ = path;
  return true;
}

void UpdateJournal::Close() { file_.reset(); }

bool UpdateJournal::AppendRecord(char type, uint64_t seq,
                                 const std::string& payload,
                                 std::string* error) {
  if (file_ == nullptr) {
    SetError(error, "journal is not open");
    return false;
  }
  std::ostringstream header;
  header << '@' << type << ' ' << seq << ' ' << payload.size() << ' '
         << Crc32Hex(Crc32(payload)) << '\n';
  std::string record = header.str() + payload + "\n";
  // One write + one fsync per record: the record is durable before the
  // caller proceeds, which is the whole point of a WAL.
  if (!file_->Append(record, error)) return false;
  if (!file_->Sync(error)) return false;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter(type == 'B'   ? "midas_journal_batch_appends_total"
                   : type == 'C' ? "midas_journal_commit_appends_total"
                                 : "midas_journal_lineage_appends_total")
        ->Increment();
    reg.GetCounter("midas_journal_bytes_written_total")
        ->Increment(record.size());
  }
  return true;
}

bool UpdateJournal::AppendBatch(uint64_t seq, const BatchUpdate& batch,
                                const LabelDictionary& dict,
                                std::string* error) {
  if (MIDAS_FAILPOINT("journal.append.io_error")) {
    SetError(error, "injected I/O error (failpoint journal.append.io_error)");
    return false;
  }
  return AppendRecord('B', seq, SerializeBatch(batch, dict), error);
}

bool UpdateJournal::AppendLineage(uint64_t seq, const std::string& payload,
                                  std::string* error) {
  if (MIDAS_FAILPOINT("journal.lineage.io_error")) {
    SetError(error,
             "injected I/O error (failpoint journal.lineage.io_error)");
    return false;
  }
  return AppendRecord('L', seq, payload, error);
}

bool UpdateJournal::AppendCommit(uint64_t seq, const PatternSet& panel,
                                 const LabelDictionary& dict,
                                 std::string* error) {
  if (MIDAS_FAILPOINT("journal.commit.io_error")) {
    SetError(error, "injected I/O error (failpoint journal.commit.io_error)");
    return false;
  }
  std::ostringstream out;
  WritePatternSet(panel, dict, out);
  return AppendRecord('C', seq, out.str(), error);
}

bool UpdateJournal::Reset(std::string* error) {
  if (file_ == nullptr) {
    SetError(error, "journal is not open");
    return false;
  }
  if (!file_->Truncate(0, error)) return false;
  // Belt and braces: persist the directory entry too, so rotation is
  // durable even on filesystems where the inode update alone is not.
  return fs_->SyncDir(io::ParentDir(path_), error);
}

JournalReadResult ReadJournal(const std::string& path, LabelDictionary& dict,
                              io::FileSystem* fs) {
  JournalReadResult result;

  std::string content;
  {
    std::string read_error;
    switch (io::Resolve(fs).Read(path, &content, &read_error)) {
      case io::ReadStatus::kNotFound:
        result.ok = true;  // no journal == empty journal
        return result;
      case io::ReadStatus::kError:
        result.error = read_error;
        return result;
      case io::ReadStatus::kOk:
        break;
    }
  }
  result.ok = true;

  // Scan records. Any framing violation marks a torn tail: everything
  // before it is trusted, the rest is dropped. A crash mid-append can only
  // tear the *last* record, so mid-file corruption also stopping the scan
  // is the conservative (never replay past doubt) choice.
  auto torn = [&result](const std::string& why) {
    result.tail_truncated = true;
    result.error = why;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
    if (reg.enabled()) {
      reg.GetCounter("midas_journal_torn_tail_total")->Increment();
    }
  };

  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      torn("torn header at byte " + std::to_string(pos));
      break;
    }
    std::istringstream header(content.substr(pos, eol - pos));
    std::string tag;
    uint64_t seq = 0;
    size_t payload_size = 0;
    std::string crc_hex;
    if (!(header >> tag >> seq >> payload_size >> crc_hex) ||
        (tag != "@B" && tag != "@C" && tag != "@L")) {
      torn("malformed record header at byte " + std::to_string(pos));
      break;
    }
    size_t payload_begin = eol + 1;
    if (payload_begin + payload_size + 1 > content.size()) {
      torn("torn payload at byte " + std::to_string(payload_begin));
      break;
    }
    std::string payload = content.substr(payload_begin, payload_size);
    if (content[payload_begin + payload_size] != '\n') {
      torn("missing record terminator at byte " +
           std::to_string(payload_begin + payload_size));
      break;
    }
    if (Crc32Hex(Crc32(payload)) != crc_hex) {
      torn("checksum mismatch in record seq " + std::to_string(seq));
      break;
    }
    pos = payload_begin + payload_size + 1;

    if (tag == "@B") {
      // Sequence sanity: seqs must advance. A batch record at or below the
      // last *committed* seq (or below an uncommitted retry's seq) cannot
      // come from a healthy writer even when its CRC is intact — treat it
      // as corruption and stop trusting the tail. Equality with an
      // uncommitted predecessor is legal: a failed round retried without a
      // checkpoint re-appends the same seq.
      if (!result.rounds.empty()) {
        const JournalRound& last = result.rounds.back();
        bool regressed = last.committed ? seq <= last.seq : seq < last.seq;
        if (regressed) {
          torn("seq regression: batch record seq " + std::to_string(seq) +
               " after " + (last.committed ? "committed" : "in-flight") +
               " round seq " + std::to_string(last.seq));
          break;
        }
      }
      JournalRound round;
      round.seq = seq;
      std::string parse_error;
      if (!ParseBatchPayload(payload, dict, &round.batch, &parse_error)) {
        torn(parse_error);
        break;
      }
      result.rounds.push_back(std::move(round));
    } else if (tag == "@L") {
      // Lineage delta for the in-flight round: must follow its batch record
      // and precede the commit. A duplicate is a writer that never exists.
      if (result.rounds.empty() || result.rounds.back().seq != seq ||
          result.rounds.back().committed ||
          !result.rounds.back().lineage_delta.empty()) {
        torn("lineage record seq " + std::to_string(seq) +
             " without matching batch record");
        break;
      }
      result.rounds.back().lineage_delta = std::move(payload);
    } else {  // @C
      if (result.rounds.empty() || result.rounds.back().seq != seq ||
          result.rounds.back().committed) {
        torn("commit record seq " + std::to_string(seq) +
             " without matching batch record");
        break;
      }
      std::istringstream in(payload);
      PatternSet panel;
      // Preserve the panel's on-disk pattern ids: they anchor the
      // provenance ledger, so recovery must reinstall them verbatim.
      if (!ReadPatternSet(in, dict, &panel, /*preserve_ids=*/true)) {
        torn("unparseable panel in commit record seq " + std::to_string(seq));
        break;
      }
      result.rounds.back().panel = std::move(panel);
      result.rounds.back().committed = true;
    }
  }
  return result;
}

}  // namespace midas
