#ifndef MIDAS_MAINTAIN_VERIFY_H_
#define MIDAS_MAINTAIN_VERIFY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "midas/common/io.h"
#include "midas/maintain/midas.h"
#include "midas/select/pattern.h"

namespace midas {

/// fsck-style integrity verification of a MIDAS engine — both the bytes on
/// disk (snapshot + journal) and the live derived state (coverage bitsets,
/// FCT index membership, panel agreement) against the base GraphDatabase.
/// A corrupted snapshot that still parses, a journal with a rewritten
/// history, or an index column that drifted from its pattern are all things
/// this pass catches and RestoreEngine alone does not.
///
/// Three tiers, each strictly more expensive:
///   kManifest — MANIFEST presence/parse + per-file CRC32 of the snapshot;
///   kJournal  — journal framing, CRCs, seq monotonicity, commit pairing
///               and continuity with the snapshot's sequence number;
///   kDeep     — recompute per-pattern coverage/scov/lcov/cog and FCT-index
///               membership against the live database (TaskPool-parallel,
///               budget-aware).
/// Verifying at level L runs every tier <= L. The result is a typed
/// IntegrityReport, not a bool: callers (the background scrubber, the
/// midas_fsck CLI) decide repair policy from the violation kinds.

enum class IntegrityTier : int { kManifest = 0, kJournal = 1, kDeep = 2 };

enum class IntegrityViolationKind {
  kSnapshotMissing,     ///< no snapshot directory (nor .tmp/.old fallback)
  kManifestMissing,     ///< snapshot dir exists, MANIFEST does not
  kManifestMalformed,   ///< MANIFEST present but unparseable / incomplete
  kFileMissing,         ///< manifest lists a file that cannot be read
  kChecksumMismatch,    ///< file bytes do not match the manifest CRC32
  kConfigInvalid,       ///< config.ini unparseable or fails ValidateConfig
  kJournalUnreadable,   ///< journal exists but cannot be read
  kJournalTornTail,     ///< torn/corrupt journal tail (dropped on recovery)
  kJournalGap,          ///< committed seq skips ahead of snapshot+replay
  kRestoreFailed,       ///< deep tier could not bring the engine back
  kCoverageMismatch,    ///< stored coverage bitset != recomputed coverage
  kPatternMetricMismatch,  ///< stored scov/lcov/cog != recomputed
  kFctIndexMismatch,    ///< TP column != recomputed feature counts
  kPanelDisagreement,   ///< published panel != engine pattern set
};

const char* IntegrityTierName(IntegrityTier tier);
const char* IntegrityViolationKindName(IntegrityViolationKind kind);

struct IntegrityViolation {
  IntegrityViolationKind kind = IntegrityViolationKind::kSnapshotMissing;
  IntegrityTier tier = IntegrityTier::kManifest;
  std::string object;  ///< file path, "pattern <id>", ...
  std::string detail;  ///< human-readable diagnosis
};

struct IntegrityReport {
  std::vector<IntegrityViolation> violations;
  uint64_t checks = 0;        ///< individual checks executed
  int tiers_run = 0;          ///< bitmask of (1 << tier)
  /// True when the deep tier ran out of budget before covering every
  /// pattern — clean() then means "no violation found", not "verified".
  bool deep_truncated = false;

  bool clean() const { return violations.empty(); }
  bool RanTier(IntegrityTier tier) const {
    return (tiers_run & (1 << static_cast<int>(tier))) != 0;
  }
  void Add(IntegrityTier tier, IntegrityViolationKind kind,
           const std::string& object, const std::string& detail);
  void Merge(const IntegrityReport& other);

  /// Multi-line human-readable summary (fsck output).
  std::string Describe() const;
  /// Compact JSON (the /integrityz and fsck --json shape).
  std::string ToJson() const;
};

struct VerifyOptions {
  IntegrityTier level = IntegrityTier::kDeep;
  /// Wall-clock budget for the deep tier (0 = unlimited). On exhaustion the
  /// remaining patterns are skipped and deep_truncated is set.
  double deep_deadline_ms = 0.0;
  /// All disk I/O goes through this (nullptr = the real POSIX backend).
  io::FileSystem* fs = nullptr;
  /// Stop collecting after this many violations (diagnosis needs the first
  /// few, not ten thousand identical CRC lines).
  size_t max_violations = 64;
};

/// Tier kManifest over one concrete snapshot directory (no .tmp/.old
/// resolution — callers pick the candidate).
IntegrityReport VerifySnapshotDir(const std::string& snapshot_dir,
                                  const VerifyOptions& options);

/// Tier kJournal over a journal file. `snapshot_seq` is the round the
/// snapshot already covers (continuity baseline for kJournalGap).
IntegrityReport VerifyJournal(const std::string& journal_path,
                              uint64_t snapshot_seq,
                              const VerifyOptions& options);

/// Tiers kManifest + kJournal over a SaveCheckpoint engine directory
/// (`<dir>/snapshot` + `<dir>/journal.log`), honoring the same .tmp/.old
/// fallback RestoreEngine uses: the primary snapshot's violations are only
/// reported if no candidate verifies clean.
IntegrityReport VerifyEngineDir(const std::string& engine_dir,
                                const VerifyOptions& options);

/// Tier kDeep against a live engine: recomputes per-pattern coverage,
/// scov/lcov/cog and FCT-index membership on the engine's TaskPool, bounded
/// by options.deep_deadline_ms. Appends to `report`.
void VerifyEngineDeep(const MidasEngine& engine, const VerifyOptions& options,
                      IntegrityReport* report);

/// Incremental slice of the deep per-pattern checks for the background
/// scrubber: verifies patterns [cursor, ...) in id order until
/// `deadline_ms` elapses, appends violations to `report`, and returns the
/// next cursor (0 when the whole panel was covered — one full lap done).
size_t VerifyPatternsSlice(const MidasEngine& engine, size_t cursor,
                           double deadline_ms, IntegrityReport* report);

/// Published-panel agreement: when `published_seq` matches the engine's
/// round_seq, the published pattern ids and coverage must equal the
/// engine's (readers lagging a round behind are legal and skipped).
void VerifyPanelAgreement(const MidasEngine& engine,
                          const PatternSet& published, uint64_t published_seq,
                          IntegrityReport* report);

/// The full fsck entry point over an engine directory: disk tiers first,
/// then (at level kDeep) a RecoverEngine + deep cross-check. A failed
/// recovery is itself a typed violation (kRestoreFailed), never a crash.
IntegrityReport VerifyEngineState(const std::string& engine_dir,
                                  const VerifyOptions& options);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_VERIFY_H_
