#include "midas/maintain/midas.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "midas/common/failpoint.h"
#include "midas/maintain/journal.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "midas/obs/sli.h"
#include "midas/obs/trace.h"

namespace midas {

// Trips when MaintenanceStats gains (or loses) a field without the
// MIDAS_MAINTENANCE_PHASES list / ToJson / FromJson being updated: the
// struct is exactly total_ms + the 8 phase doubles + graphlet_distance +
// 4 bools + 4 ints (padded) on the LP64 ABIs CI builds on.
static_assert(sizeof(MaintenanceStats) ==
                  10 * sizeof(double) + 24 /* 4 bools + 4 ints + padding */,
              "MaintenanceStats layout changed: update "
              "MIDAS_MAINTENANCE_PHASES, ToJson/FromJson and "
              "docs/observability.md");

namespace {

// 0 = hardware_concurrency (at least 1 if the runtime reports 0).
int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// MIDAS_VIEWS env kill-switch: "off"/"0"/"false" force-disables the
// incremental views process-wide regardless of the config flag (the
// views-off ctest configuration relies on this to exercise the oracle).
bool ViewsEnabled(bool config_flag) {
  const char* env = std::getenv("MIDAS_VIEWS");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
       std::strcmp(env, "false") == 0)) {
    return false;
  }
  return config_flag;
}

}  // namespace

std::vector<std::string> ValidateConfig(const MidasConfig& config) {
  std::vector<std::string> problems;
  if (config.budget.eta_min <= 2) {
    problems.push_back(
        "budget.eta_min must be > 2 (Definition 3.1); patterns of size <= 2 "
        "are served by the SmallPatternPanel instead");
  }
  if (config.budget.eta_max < config.budget.eta_min) {
    problems.push_back("budget.eta_max is below budget.eta_min");
  }
  if (config.budget.gamma == 0) {
    problems.push_back("budget.gamma is 0: no patterns would be displayed");
  }
  if (config.fct.sup_min <= 0.0 || config.fct.sup_min > 1.0) {
    problems.push_back("fct.sup_min must be a fraction in (0, 1]");
  }
  if (config.fct.max_edges == 0) {
    problems.push_back("fct.max_edges is 0: no trees can be mined");
  }
  if (config.epsilon < 0.0) {
    problems.push_back("epsilon must be non-negative");
  }
  if (config.kappa < 0.0 || config.lambda < 0.0) {
    problems.push_back("swapping thresholds kappa/lambda must be >= 0");
  }
  if (config.cluster.num_coarse == 0) {
    problems.push_back("cluster.num_coarse must be >= 1");
  }
  if (config.cluster.max_cluster_size == 0) {
    problems.push_back("cluster.max_cluster_size must be >= 1");
  }
  if (config.walk.num_walks <= 0 || config.walk.walk_length <= 0) {
    problems.push_back("walk.num_walks and walk.walk_length must be >= 1");
  }
  if (config.round_deadline_ms < 0.0) {
    problems.push_back("round_deadline_ms must be >= 0 (0 = unlimited)");
  }
  if (config.num_threads < 0) {
    problems.push_back(
        "num_threads must be >= 0 (0 = hardware concurrency, 1 = serial)");
  }
  // Legal but dubious.
  if (config.fct.sup_min < 0.1) {
    problems.push_back(
        "warning: fct.sup_min < 0.1 can explode the FCT pool; check "
        "|FCT|/|D| (docs/tuning.md)");
  }
  if (config.kappa > 1.0) {
    problems.push_back(
        "warning: kappa > 1 makes sw1 nearly unsatisfiable; the panel will "
        "rarely update");
  }
  if (config.sample_cap > 0 && config.sample_cap < 20) {
    problems.push_back(
        "warning: sample_cap < 20 makes scov estimates very noisy");
  }
  if (config.round_deadline_ms > 0.0 && config.round_deadline_ms < 5.0) {
    problems.push_back(
        "warning: round_deadline_ms < 5 truncates nearly every phase; the "
        "panel will mostly coast on stale patterns");
  }
  return problems;
}

MidasEngine::MidasEngine(GraphDatabase db, const MidasConfig& config)
    : config_(config),
      rng_(config.seed),
      pool_(std::make_unique<TaskPool>(ResolveNumThreads(config.num_threads))),
      db_(std::move(db)),
      history_(config.history_capacity),
      views_(ViewsEnabled(config.incremental_views)) {
  // Keep the swap thresholds in sync with the top-level κ/λ knobs.
  config_.swap.kappa = config_.kappa;
  config_.swap.lambda = config_.lambda;
}

MidasEngine::~MidasEngine() = default;

void MidasEngine::Initialize() {
  census_ = GraphletCensus(db_, pool_.get());
  fcts_ = FctSet::Mine(db_, config_.fct, pool_.get());
  clusters_ = ClusterSet::Build(db_, fcts_, config_.cluster, rng_,
                                pool_.get());
  RebuildCsgsFromClusters();
  fct_index_ = FctIndex::Build(db_, fcts_);
  ife_index_ = IfeIndex::Build(db_, fcts_);
  {
    std::vector<Graph> trees = GedFeatureTrees(fcts_);
    ged_digest_ = GedFeatureDigest(trees);
    ged_ = HybridGed(std::move(trees), &round_budget_);
  }
  eval_ = std::make_unique<CoverageEvaluator>(db_, config_.sample_cap, rng_,
                                              &fct_index_, &ife_index_);
  eval_->set_pool(pool_.get());

  CatapultConfig select;
  select.budget = config_.budget;
  select.walk = config_.walk;
  select.pcp_starts = config_.pcp_starts;
  select.sample_cap = config_.sample_cap;
  select.pool = pool_.get();
  patterns_ = SelectCannedPatterns(db_, fcts_, csgs_, select, rng_,
                                   &fct_index_, &ife_index_);
  SyncPatternColumns();
  // The selection ran on its *own* evaluator (whose sampled universe may
  // differ from eval_'s), so the fresh panel's coverage is not guaranteed
  // against eval_'s universe — the views stay invalid and round 1 rescans,
  // which also seeds the cost model's rescan EWMA.
  views_.Invalidate();
  small_panel_ = SmallPatternPanel(config_.small_panel);
  small_panel_.Refresh(fcts_);
  // Ledger births for the initial selection (seq 0). Suppressed during
  // recovery: the restored ledger already carries these patterns' history.
  if (!lineage_replay_) {
    ledger_.Clear();
    for (const auto& [pid, p] : patterns_.patterns()) {
      ledger_.RecordInitial(pid, p.scov, p.lcov, p.div, p.cog, p.score);
    }
  }
  initialized_ = true;
}

void MidasEngine::SetNumThreads(int num_threads) {
  config_.num_threads = num_threads;
  pool_ = std::make_unique<TaskPool>(ResolveNumThreads(num_threads));
  if (eval_ != nullptr) eval_->set_pool(pool_.get());
}

void MidasEngine::RestoreRoundSeq(uint64_t seq) {
  round_seq_ = std::max(round_seq_, seq);
}

void MidasEngine::LoadPatterns(PatternSet set) {
  // A loaded panel replaces the current one wholesale, and its pattern ids
  // mean different graphs than the ids already registered (restore loads a
  // snapshot panel over the one Initialize just selected — the id spaces
  // collide). SyncPatternColumns dedups by id, so stale columns must be
  // dropped explicitly or they silently keep the old panel's counts.
  for (PatternId pid : indexed_patterns_) {
    fct_index_.RemovePattern(pid);
    ife_index_.RemovePattern(pid);
  }
  indexed_patterns_.clear();
  patterns_ = std::move(set);
  views_.Invalidate();
  RefreshAllPatternMetrics();
  RefreshDiversityAndScores(patterns_, ged_, pool_.get());
  SyncPatternColumns();
  // The full rescan above squared every pattern against eval_'s universe,
  // so the loaded panel is a valid delta base for the next round.
  if (views_.enabled() && eval_ != nullptr) {
    views_.Commit(eval_->universe(), ged_digest_);
  }
  // Square the ledger with the externally installed panel: synthesizes
  // kRestored/kRemoved events for ids the ledger did not know about. A
  // no-op when the panel's history was restored verbatim (recovery applies
  // journaled deltas under lineage_replay_ and reconciles afterwards).
  if (!lineage_replay_) {
    ledger_.Reconcile(patterns_, round_seq_);
  }
}

void MidasEngine::RebuildCsgsFromClusters() {
  csgs_.clear();
  // CSG builds are independent per cluster; build in parallel, insert in
  // ascending cluster-id order.
  std::vector<std::pair<ClusterId, const Cluster*>> rows;
  rows.reserve(clusters_.clusters().size());
  for (const auto& [cid, cluster] : clusters_.clusters()) {
    rows.emplace_back(cid, &cluster);
  }
  std::vector<Csg> built(rows.size());
  ParallelFor(pool_.get(), rows.size(), [&](size_t i) {
    built[i] = Csg::Build(db_, rows[i].second->members);
  });
  for (size_t i = 0; i < rows.size(); ++i) {
    csgs_.emplace(rows[i].first, std::move(built[i]));
  }
}

void MidasEngine::RebuildDerivedState() {
  if (!initialized_) {
    Initialize();
    return;
  }
  // Initialize()'s derivation pipeline minus pattern selection: every view
  // is a pure function of the base database (plus the rng for cluster
  // seeding), so a corrupted census/index/bitset is simply recomputed. The
  // panel survives; LoadPatterns re-registers its index columns and
  // refreshes its metrics against the fresh structures.
  census_ = GraphletCensus(db_, pool_.get());
  fcts_ = FctSet::Mine(db_, config_.fct, pool_.get());
  clusters_ =
      ClusterSet::Build(db_, fcts_, config_.cluster, rng_, pool_.get());
  RebuildCsgsFromClusters();
  fct_index_ = FctIndex::Build(db_, fcts_);
  ife_index_ = IfeIndex::Build(db_, fcts_);
  {
    std::vector<Graph> trees = GedFeatureTrees(fcts_);
    ged_digest_ = GedFeatureDigest(trees);
    ged_ = HybridGed(std::move(trees), &round_budget_);
  }
  eval_ = std::make_unique<CoverageEvaluator>(db_, config_.sample_cap, rng_,
                                              &fct_index_, &ife_index_);
  eval_->set_pool(pool_.get());
  // The rebuilt indices start with no pattern columns; forget the stale
  // registrations so SyncPatternColumns re-adds every panel pattern.
  indexed_patterns_.clear();
  LoadPatterns(std::move(patterns_));
  small_panel_ = SmallPatternPanel(config_.small_panel);
  small_panel_.Refresh(fcts_);
}

void MidasEngine::RefreshAllPatternMetrics() {
  // Each row writes only its own pattern; CoverageOf degrades to its serial
  // inner loop on worker threads (nested parallelism), so the coarse
  // per-pattern grain wins here.
  std::vector<CannedPattern*> rows;
  rows.reserve(patterns_.patterns().size());
  for (auto& [pid, p] : patterns_.patterns()) rows.push_back(&p);
  ParallelFor(pool_.get(), rows.size(), [&](size_t i) {
    RefreshPatternMetrics(*rows[i], *eval_, fcts_);
  });
}

void MidasEngine::DeltaRefreshPatternMetrics(
    const view::ViewCatalog::Plan& plan,
    const std::set<EdgeLabelPair>& changed_pairs) {
  std::vector<CannedPattern*> rows;
  rows.reserve(patterns_.patterns().size());
  for (auto& [pid, p] : patterns_.patterns()) rows.push_back(&p);
  const size_t universe = eval_->universe().size();
  const size_t db_size = db_.size();
  ParallelFor(pool_.get(), rows.size(), [&](size_t i) {
    CannedPattern& p = *rows[i];
    // Coverage: survivors keep their verdicts (data graphs are immutable,
    // ids never reused), removed universe ids drop without any VF2 work,
    // and only the Δ⁺ ids are probed — through the FCT/IFE candidate filter
    // and the containment memo, exactly like the oracle's scan. The result
    // is the same set the oracle would compute, hence the same bytes.
    p.coverage.DifferenceWith(plan.removed);
    if (!plan.added.empty()) {
      p.coverage.UnionWith(eval_->CoverageOver(p.graph, plan.added));
    }
    p.scov = universe == 0 ? 0.0
                           : static_cast<double>(p.coverage.size()) /
                                 static_cast<double>(universe);
    // lcov numerator: dirty only when the pattern's edge-label pairs
    // intersect the batch's changed pairs — edge_occ_ is exact for every
    // pair, so an untouched pair's occurrence list is unchanged. The ratio
    // always recomputes (|D| moves every round).
    bool lcov_dirty = false;
    for (const EdgeLabelPair& lp : p.graph.DistinctEdgeLabels()) {
      if (changed_pairs.count(lp) != 0) {
        lcov_dirty = true;
        break;
      }
    }
    if (lcov_dirty) {
      p.lcov_count = eval_->LabelCoverageCount(p.graph, fcts_);
    }
    p.lcov = db_size == 0 ? 0.0
                          : static_cast<double>(p.lcov_count) /
                                static_cast<double>(db_size);
    p.cog = p.graph.CognitiveLoad();
  });
}

std::map<ClusterId, Csg> MidasEngine::AffectedCsgView(
    const std::vector<ClusterId>& affected) const {
  std::map<ClusterId, Csg> view;
  for (ClusterId cid : affected) {
    auto it = csgs_.find(cid);
    if (it != csgs_.end()) view.emplace(cid, it->second);
  }
  return view;
}

void MidasEngine::ReconcileCsgs() {
  // Drop CSGs of clusters that vanished.
  for (auto it = csgs_.begin(); it != csgs_.end();) {
    if (clusters_.clusters().count(it->first) == 0) {
      it = csgs_.erase(it);
    } else {
      ++it;
    }
  }
  // (Re)build CSGs whose membership diverged (fine splits, new clusters).
  // The rebuilds are independent, so they fan out over the pool; results
  // are inserted in ascending cluster-id order.
  std::vector<std::pair<ClusterId, const Cluster*>> stale;
  for (const auto& [cid, cluster] : clusters_.clusters()) {
    auto it = csgs_.find(cid);
    if (it == csgs_.end() || !(it->second.members() == cluster.members)) {
      stale.emplace_back(cid, &cluster);
    }
  }
  std::vector<Csg> rebuilt(stale.size());
  ParallelFor(pool_.get(), stale.size(), [&](size_t i) {
    rebuilt[i] = Csg::Build(db_, stale[i].second->members);
  });
  for (size_t i = 0; i < stale.size(); ++i) {
    csgs_.insert_or_assign(stale[i].first, std::move(rebuilt[i]));
  }
}

void MidasEngine::SyncPatternColumns() {
  std::set<PatternId> current;
  for (const auto& [pid, p] : patterns_.patterns()) current.insert(pid);
  for (PatternId pid : indexed_patterns_) {
    if (current.count(pid) == 0) {
      fct_index_.RemovePattern(pid);
      ife_index_.RemovePattern(pid);
    }
  }
  for (const auto& [pid, p] : patterns_.patterns()) {
    if (indexed_patterns_.count(pid) == 0) {
      fct_index_.AddPattern(pid, p.graph);
      ife_index_.AddPattern(pid, p.graph);
    }
  }
  indexed_patterns_ = std::move(current);
}

MaintenanceStats MidasEngine::ApplyUpdate(const BatchUpdate& raw_delta,
                                          MaintenanceMode mode) {
  // Deletion hygiene: ids absent from the database are rejected up front
  // (not silently ignored by GraphDatabase::Remove deep in the round), and
  // ids repeated within one batch are deduped before anything is journaled.
  // Serving paths pre-validate with serve::ValidateBatch for per-item
  // diagnostics; this is the engine's own backstop.
  const BatchUpdate* effective = &raw_delta;
  BatchUpdate deduped;
  {
    std::set<GraphId> seen;
    bool duplicates = false;
    for (GraphId id : raw_delta.deletions) {
      if (!db_.Contains(id)) {
        throw std::invalid_argument("ApplyUpdate refused: deletion id " +
                                    std::to_string(id) +
                                    " is not in the database");
      }
      if (!seen.insert(id).second) duplicates = true;
    }
    if (duplicates) {
      deduped.insertions = raw_delta.insertions;
      seen.clear();
      for (GraphId id : raw_delta.deletions) {
        if (seen.insert(id).second) deduped.deletions.push_back(id);
      }
      effective = &deduped;
    }
  }
  const BatchUpdate& delta = *effective;

  // Write-ahead intent: the batch must be durable before any state changes.
  // On append failure we refuse the round with the engine untouched — the
  // caller retries or runs unjournaled, but never diverges from the log.
  uint64_t seq = round_seq_ + 1;
  if (journal_ != nullptr) {
    std::string journal_error;
    if (!journal_->AppendBatch(seq, delta, db_.labels(), &journal_error)) {
      throw std::runtime_error("ApplyUpdate refused: journal batch append "
                               "failed: " +
                               journal_error);
    }
  }

  // Open the ledger's round buffer: swap decisions and rescores pend here
  // and apply only at commit, so a thrown round leaves no lineage trace
  // (the next BeginRound discards stale pendings). Replay applies the
  // journaled @L deltas instead of re-recording.
  if (!lineage_replay_) {
    ledger_.BeginRound(seq);
  }

  // Arm the shared round budget (unlimited when no limit is configured;
  // round_budget_ stays a valid target either way because the HybridGed
  // closure holds its address).
  if (config_.round_deadline_ms > 0.0 || config_.round_step_limit > 0) {
    round_budget_.Reset(config_.round_deadline_ms > 0.0
                            ? Deadline::AfterMs(config_.round_deadline_ms)
                            : Deadline::Infinite(),
                        config_.round_step_limit);
  } else {
    round_budget_.ResetUnlimited();
  }

  MaintenanceStats stats;
  obs::TraceSpan total_span("midas_maintain_total_ms", &stats.total_ms);

  size_t num_additions = delta.insertions.size();
  std::vector<double> psi_before;
  std::vector<double> psi_after;
  std::vector<GraphId> added;
  std::vector<std::pair<GraphId, ClusterId>> deletion_clusters;
  // Edge-label pairs the batch touches — the lcov views' dirtying key: a
  // pattern's label-coverage accumulator can only change when one of its
  // edge-label pairs gained or lost occurrence rows.
  std::set<EdgeLabelPair> changed_pairs;
  {
    obs::TraceSpan span("midas_maintain_apply_ms", &stats.apply_ms);
    // Deterministic slow-down hook for tracing tests: stalls the apply
    // phase of exactly the armed round without touching any maintenance
    // decision, so a trace's "slow phase dominates self time" claim can be
    // proven end to end.
    if (MIDAS_FAILPOINT("midas.apply_update.slow_apply")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    psi_before = census_.Distribution();

    // Record cluster membership of deletions before they disappear.
    for (GraphId id : delta.deletions) {
      int cid = clusters_.ClusterOf(id);
      if (cid >= 0) {
        deletion_clusters.emplace_back(id, static_cast<ClusterId>(cid));
      }
    }

    // Deleted graphs' labels must be read before ApplyBatch erases them.
    if (views_.enabled()) {
      for (GraphId id : delta.deletions) {
        const Graph* g = db_.Find(id);
        if (g == nullptr) continue;
        for (const EdgeLabelPair& lp : g->DistinctEdgeLabels()) {
          changed_pairs.insert(lp);
        }
      }
    }

    // Apply ΔD to the database and the graphlet census (ESU counts of the
    // added graphs fan out over the pool).
    for (GraphId id : delta.deletions) census_.Remove(id);
    added = db_.ApplyBatch(delta);
    census_.AddBatch(db_, added, pool_.get());
    psi_after = census_.Distribution();

    if (views_.enabled()) {
      for (GraphId id : added) {
        const Graph* g = db_.Find(id);
        if (g == nullptr) continue;
        for (const EdgeLabelPair& lp : g->DistinctEdgeLabels()) {
          changed_pairs.insert(lp);
        }
      }
    }
  }
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_apply");

  // Lines 1-2: cluster assignment / removal. The span pauses across FCT
  // maintenance and resumes for line 6's fine splitting, so the two
  // non-contiguous cluster regions are accumulated exactly once.
  obs::TraceSpan cluster_span("midas_maintain_cluster_ms", &stats.cluster_ms);
  std::vector<ClusterId> c_plus = clusters_.AssignGraphs(db_, added);
  std::vector<GraphId> removed_ids(delta.deletions);
  std::vector<ClusterId> c_minus = clusters_.RemoveGraphs(removed_ids);
  cluster_span.Pause();

  // Line 5: FCT maintenance.
  {
    obs::TraceSpan span("midas_maintain_fct_ms", &stats.fct_ms);
    if (!removed_ids.empty()) fcts_.MaintainDelete(removed_ids, db_.size());
    if (!added.empty()) {
      fcts_.MaintainAdd(db_, added, &round_budget_, pool_.get());
    }
  }
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_fct");

  // Line 6: fine clustering of oversized clusters.
  cluster_span.Resume();
  std::vector<ClusterId> created =
      clusters_.SplitOversized(db_, rng_, pool_.get());
  cluster_span.Stop();
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_cluster");

  // Line 7: CSG maintenance — incremental adds/removes, then reconcile the
  // clusters whose membership was rearranged by splitting.
  {
    obs::TraceSpan span("midas_maintain_csg_ms", &stats.csg_ms);
    for (const auto& [gid, cid] : deletion_clusters) {
      auto it = csgs_.find(cid);
      if (it != csgs_.end()) it->second.RemoveGraph(gid);
    }
    for (GraphId id : added) {
      int cid = clusters_.ClusterOf(id);
      const Graph* g = db_.Find(id);
      if (cid >= 0 && g != nullptr) {
        auto it = csgs_.find(static_cast<ClusterId>(cid));
        if (it != csgs_.end()) {
          it->second.AddGraph(id, *g);
        }
      }
    }
    ReconcileCsgs();
  }
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_csg");

  // Line 12 (part 1): graph-side index maintenance. Feature rows are synced
  // against the maintained FCT universe; columns follow ΔD. The span pauses
  // until the pattern-side column sync after swapping (part 2).
  obs::TraceSpan index_span("midas_maintain_index_ms", &stats.index_ms);
  for (GraphId id : removed_ids) {
    fct_index_.RemoveGraph(id);
    ife_index_.RemoveGraph(id);
  }
  for (GraphId id : added) {
    const Graph* g = db_.Find(id);
    if (g == nullptr) continue;
    fct_index_.AddGraph(id, *g);
    ife_index_.AddGraph(id, *g);
  }
  fct_index_.SyncFeatures(db_, fcts_);
  ife_index_.SyncEdges(db_, fcts_);
  // The feature rows just changed; the evaluator's per-pattern FeatureCounts
  // memo is keyed only by pattern content, so it must be dropped here.
  eval_->InvalidateFeatureCounts();
  index_span.Pause();
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_index");

  // Refresh the evaluation universe, the diversity estimator (the FCT
  // universe may have changed) and the cached pattern metrics; then
  // classify (lines 8-11). The span resumes for the companion-panel
  // refresh after swapping.
  obs::TraceSpan refresh_span("midas_maintain_refresh_ms", &stats.refresh_ms);
  {
    std::vector<Graph> trees = GedFeatureTrees(fcts_);
    ged_digest_ = GedFeatureDigest(trees);
    ged_ = HybridGed(std::move(trees), &round_budget_);
  }
  // A digest move means the feature trees behind the estimator changed, so
  // the pairwise-distance view self-clears (stale distances cannot alias).
  views_.pair_view().SetDigest(ged_digest_);
  eval_->Resample(rng_);

  // Strategy choice: delta-apply the universe churn Δ⁺/Δ⁻ into the
  // coverage/lcov views, or run the full-recompute oracle. Both paths
  // produce identical bytes; the cost model only decides which is faster
  // this round, and the choice is surfaced in stats/metrics/flight records.
  const size_t refresh_rows = patterns_.size();
  view::ViewCatalog::Plan plan =
      views_.PlanRefresh(refresh_rows, eval_->universe());
  {
    auto refresh_start = std::chrono::steady_clock::now();
    if (plan.use_delta) {
      DeltaRefreshPatternMetrics(plan, changed_pairs);
    } else {
      RefreshAllPatternMetrics();
    }
    double refresh_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - refresh_start)
            .count();
    if (plan.use_delta) {
      views_.ObserveDelta(refresh_wall_ms,
                          plan.added.size() + plan.removed.size());
      stats.view_delta = true;
      stats.view_delta_rows = static_cast<int>(refresh_rows);
    } else if (views_.enabled()) {
      views_.ObserveRescan(refresh_wall_ms, refresh_rows);
      stats.view_fallback = plan.fallback;
      stats.view_rescan_rows = static_cast<int>(refresh_rows);
    }
  }
  // Shed mode (overload ladder): the pairwise-GED diversity refresh is the
  // round's most expendable expense — skipping it leaves diversity/score
  // columns stale but every structural invariant intact.
  if (!config_.shed_diversity_refresh) {
    view::RefreshDiversityAndScoresCached(
        patterns_, ged_, views_.enabled() ? &views_.pair_view() : nullptr,
        &round_budget_, pool_.get());
  }

  ModificationReport report =
      ClassifyModification(psi_before, psi_after, config_.epsilon,
                           config_.distance_measure);
  stats.graphlet_distance = report.distance;
  stats.major = report.type == ModificationType::kMajor;
  refresh_span.Pause();
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_refresh");

  if (stats.major && mode != MaintenanceMode::kNoMaintain &&
      patterns_.size() > 0) {
    // Candidate generation from affected CSGs only (Section 5).
    std::vector<Graph> candidates;
    {
      obs::TraceSpan span("midas_maintain_candidate_ms", &stats.candidate_ms);
      std::vector<ClusterId> affected;
      affected.insert(affected.end(), c_plus.begin(), c_plus.end());
      affected.insert(affected.end(), c_minus.begin(), c_minus.end());
      affected.insert(affected.end(), created.begin(), created.end());
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()),
                     affected.end());

      CandidateGenConfig gen;
      gen.budget = config_.budget;
      gen.walk = config_.walk;
      gen.kappa = config_.kappa;
      gen.pcp_starts = config_.pcp_starts;
      gen.max_candidates =
          config_.shed_candidate_cap > 0
              ? std::min(config_.max_candidates, config_.shed_candidate_cap)
              : config_.max_candidates;
      gen.pool = pool_.get();
      std::map<ClusterId, Csg> affected_csgs = AffectedCsgView(affected);
      candidates = GeneratePromisingCandidates(
          db_, fcts_, affected_csgs, patterns_, eval_->universe(), gen, rng_);
      stats.candidates = static_cast<int>(candidates.size());
    }
    MIDAS_FAILPOINT_ABORT("midas.apply_update.after_candidates");

    {
      obs::TraceSpan span("midas_maintain_swap_ms", &stats.swap_ms);
      // The rationale is captured at the decision site itself: the observer
      // runs synchronously on the (serial) decision loop, so the pend order
      // is thread-count-invariant and the ledger stays deterministic.
      SwapObserver observer;
      if (!lineage_replay_) {
        observer = [this](const SwapDecision& d) {
          obs::SwapRationale r;
          r.winner_score = d.winner_score;
          r.loser_score = d.loser_score;
          r.margin = d.winner_score - d.loser_score;
          r.coverage_gain = d.coverage_gain;
          r.coverage_loss = d.coverage_loss;
          r.kappa = d.kappa;
          r.div_before = d.div_before;
          r.div_after = d.div_after;
          r.cog_before = d.cog_before;
          r.cog_after = d.cog_after;
          r.lcov_before = d.lcov_before;
          r.lcov_after = d.lcov_after;
          r.random = d.random;
          r.dominant_term = obs::DominantTerm(r);
          ledger_.PendDeath(d.loser_id, d.winner_id, /*has_winner=*/true, &r,
                            d.loser_scov, d.loser_lcov, d.loser_div,
                            d.loser_cog, d.loser_score);
          ledger_.PendBirth(d.winner_id, obs::LineageEventKind::kSwapIn,
                            d.loser_id, /*has_loser=*/true, &r, d.winner_scov,
                            d.winner_lcov, d.div_after, d.winner_cog,
                            d.winner_score);
        };
      }
      if (mode == MaintenanceMode::kMidas) {
        SwapConfig swap_config = config_.swap;
        swap_config.budget = &round_budget_;
        swap_config.pool = pool_.get();
        swap_config.observer = observer;
        swap_config.pair_view =
            views_.enabled() ? &views_.pair_view() : nullptr;
        SwapStats sw = MultiScanSwap(patterns_, candidates, *eval_, fcts_,
                                     swap_config, ged_);
        stats.swaps = sw.swaps;
      } else {  // kRandomSwap
        stats.swaps =
            RandomSwap(patterns_, candidates, *eval_, fcts_, rng_, observer);
      }
      if (!config_.shed_diversity_refresh) {
        view::RefreshDiversityAndScoresCached(
            patterns_, ged_, views_.enabled() ? &views_.pair_view() : nullptr,
            &round_budget_, pool_.get());
      }
    }
  }
  MIDAS_FAILPOINT_ABORT("midas.apply_update.after_swap");

  // The η <= 2 companion panel follows the maintained FCT pool directly.
  refresh_span.Resume();
  small_panel_.Refresh(fcts_);
  refresh_span.Stop();

  // Line 12 (part 2): pattern-side index maintenance after swaps.
  index_span.Resume();
  SyncPatternColumns();
  index_span.Stop();

  // Commit the views' base state: every pattern's coverage/lcov now squares
  // with eval_'s universe (the refresh ran either path to identical bytes,
  // and swapped-in winners were evaluated against the same universe), so
  // the next round may delta from here.
  if (views_.enabled()) {
    views_.Commit(eval_->universe(), ged_digest_);
  }

  total_span.Stop();

  // Read the budget verdict before disarming it; the budget returns to
  // unlimited between rounds so out-of-round estimator calls never degrade.
  stats.truncated = round_budget_.exhausted();
  ExecBudget::Cause budget_cause = round_budget_.cause();
  uint64_t budget_steps = round_budget_.steps_used();
  round_budget_.ResetUnlimited();

  // Attribute the round's kernel cost to the owning batch's causal trace
  // (installed thread-locally by the serving host; absent in direct engine
  // use). Read-only with respect to maintenance state.
  if (obs::TraceContext* trace = obs::TraceContext::Current()) {
    trace->AddBudgetSteps(budget_steps);
    trace->SetDegradeCause(static_cast<int>(budget_cause));
  }

  // Close the ledger round: one rescore per surviving pattern (sorted map
  // order — deterministic), then stamp the causal trace so replayed lineage
  // keeps its flight-record cross-links.
  if (!lineage_replay_) {
    for (const auto& [pid, p] : patterns_.patterns()) {
      ledger_.PendRescore(pid, p.scov, p.lcov, p.div, p.cog, p.score);
    }
    if (obs::TraceContext* trace = obs::TraceContext::Current()) {
      ledger_.StampTrace(trace->id().ToHex());
    }
  }

  // Commit: the round's outcome (including the exact panel) is durable
  // before the round counter advances. A crash before this append leaves
  // the batch record without a commit — recovery replays up to the previous
  // round and drops this one as in-flight, which matches the in-memory
  // state never having been observed by a caller.
  ++round_seq_;
  if (journal_ != nullptr) {
    std::string journal_error;
    // The @L record precedes @C so a committed round always carries its
    // lineage delta. An append failure is surfaced, not thrown: recovery
    // then reconciles this round's lineage synthetically.
    if (!lineage_replay_ &&
        !journal_->AppendLineage(seq, ledger_.SerializeDelta(
                                          patterns_.next_id()),
                                 &journal_error)) {
      obs::MetricsRegistry& mreg = obs::MetricsRegistry::Current();
      if (mreg.enabled()) {
        mreg.GetCounter("midas_journal_lineage_failures_total")->Increment();
      }
    }
    if (!journal_->AppendCommit(seq, patterns_, db_.labels(),
                                &journal_error)) {
      // The in-memory round is complete and valid; losing the commit record
      // only means recovery would re-run this round. Surface, don't throw.
      obs::MetricsRegistry& mreg = obs::MetricsRegistry::Current();
      if (mreg.enabled()) {
        mreg.GetCounter("midas_journal_commit_failures_total")->Increment();
      }
    }
  }
  if (!lineage_replay_) {
    ledger_.Commit();
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter("midas_maintain_rounds_total")->Increment();
    if (stats.major) {
      reg.GetCounter("midas_maintain_major_rounds_total")->Increment();
    }
    if (stats.truncated) {
      reg.GetCounter("midas_maintain_truncated_rounds_total")->Increment();
    }
    reg.GetCounter("midas_maintain_swaps_total")
        ->Increment(static_cast<uint64_t>(stats.swaps));
    reg.GetCounter("midas_maintain_candidates_total")
        ->Increment(static_cast<uint64_t>(stats.candidates));
    reg.GetCounter("midas_view_delta_rows_total")
        ->Increment(static_cast<uint64_t>(stats.view_delta_rows));
    reg.GetCounter("midas_view_rescan_rows_total")
        ->Increment(static_cast<uint64_t>(stats.view_rescan_rows));
    if (stats.view_fallback) {
      reg.GetCounter("midas_view_fallback_total")->Increment();
    }
    reg.GetGauge("midas_maintain_db_size")
        ->Set(static_cast<double>(db_.size()));
    reg.GetGauge("midas_maintain_patterns")
        ->Set(static_cast<double>(patterns_.size()));
    reg.GetGauge("midas_maintain_graphlet_distance")
        ->Set(stats.graphlet_distance);
  }

  history_.Record(stats);

  // Quality SLIs (Definition 2.1 components on the post-round panel):
  // exported as midas_quality_* gauges, fed to the drift detector, and
  // recorded in the event log. Skipped entirely when nobody is listening,
  // so the metrics-off bench path stays unchanged.
  if (reg.enabled() || event_log_ != nullptr || drift_ != nullptr) {
    PatternQuality q = CurrentQuality();
    if (reg.enabled()) {
      reg.GetGauge("midas_quality_coverage")->Set(q.scov);
      reg.GetGauge("midas_quality_label_coverage")->Set(q.lcov);
      reg.GetGauge("midas_quality_diversity")->Set(q.div);
      reg.GetGauge("midas_quality_cognitive_load")->Set(q.cog_avg);
      reg.GetGauge("midas_quality_cognitive_load_max")->Set(q.cog_max);
    }

    obs::DriftFinding drift;
    if (drift_ != nullptr) {
      drift = drift_->Observe(
          obs::QualitySample{q.scov, q.lcov, q.div, q.cog_avg});
    }

    if (event_log_ != nullptr) {
      obs::MaintenanceEvent event;
      event.seq = round_seq_;
      event.additions = num_additions;
      event.deletions = delta.deletions.size();
      event.db_size = db_.size();
      event.patterns = patterns_.size();
      event.major = stats.major;
      event.graphlet_distance = stats.graphlet_distance;
      event.epsilon = config_.epsilon;
      event.candidates = stats.candidates;
      event.swaps = stats.swaps;
      event.truncated = stats.truncated;
      event.degrade_reason = std::string(ExecBudget::CauseName(budget_cause));
      event.budget_steps = budget_steps;
      event.phase_ms.emplace_back("total_ms", stats.total_ms);
#define MIDAS_EVENT_PHASE(field) \
  event.phase_ms.emplace_back(#field, stats.field);
      MIDAS_MAINTENANCE_PHASES(MIDAS_EVENT_PHASE)
#undef MIDAS_EVENT_PHASE
      event.scov = q.scov;
      event.lcov = q.lcov;
      event.div = q.div;
      event.cog_avg = q.cog_avg;
      event.cog_max = q.cog_max;
      event_log_->Append(event);

      // One structured line per drift transition, interleaved with the
      // per-round records (consumers split on the `quality_event` key).
      if (drift.newly_drifted || drift.recovered) {
        obs::JsonWriter w;
        w.BeginObject();
        w.Key("quality_event")
            .Value(drift.newly_drifted ? "quality_drift" : "quality_recovered");
        w.Key("seq").Value(round_seq_);
        w.Key("metric").Value(drift.metric);
        w.Key("ks_statistic").Value(drift.ks_statistic);
        w.Key("p_value").Value(drift.p_value);
        w.Key("baseline_mean").Value(drift.baseline_mean);
        w.Key("window_mean").Value(drift.window_mean);
        w.EndObject();
        event_log_->AppendRaw(w.str());
      }
    }
  }
  return stats;
}

double MaintenanceStats::PhaseSumMs() const {
  double sum = 0.0;
#define MIDAS_SUM_PHASE(field) sum += field;
  MIDAS_MAINTENANCE_PHASES(MIDAS_SUM_PHASE)
#undef MIDAS_SUM_PHASE
  return sum;
}

std::string MaintenanceStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("total_ms").Value(total_ms);
#define MIDAS_JSON_PHASE(field) w.Key(#field).Value(field);
  MIDAS_MAINTENANCE_PHASES(MIDAS_JSON_PHASE)
#undef MIDAS_JSON_PHASE
  w.Key("graphlet_distance").Value(graphlet_distance);
  w.Key("major").Value(major);
  w.Key("truncated").Value(truncated);
  w.Key("candidates").Value(candidates);
  w.Key("swaps").Value(swaps);
  w.Key("view_delta").Value(view_delta);
  w.Key("view_fallback").Value(view_fallback);
  w.Key("view_delta_rows").Value(view_delta_rows);
  w.Key("view_rescan_rows").Value(view_rescan_rows);
  // Derived, ignored by FromJson: the human-facing strategy spelling
  // (/statusz splices this object verbatim).
  w.Key("view_strategy").Value(ViewStrategy());
  w.EndObject();
  return w.str();
}

MaintenanceStats MaintenanceStats::FromJson(std::string_view json, bool* ok) {
  MaintenanceStats stats;
  obs::FlatJson parsed = obs::ParseFlatJson(json);
  bool complete = parsed.ok;
  auto number = [&](const char* key, double* out) {
    auto it = parsed.numbers.find(key);
    if (it == parsed.numbers.end()) {
      complete = false;
      return;
    }
    *out = it->second;
  };
  number("total_ms", &stats.total_ms);
#define MIDAS_PARSE_PHASE(field) number(#field, &stats.field);
  MIDAS_MAINTENANCE_PHASES(MIDAS_PARSE_PHASE)
#undef MIDAS_PARSE_PHASE
  number("graphlet_distance", &stats.graphlet_distance);
  auto bit = parsed.bools.find("major");
  if (bit == parsed.bools.end()) {
    complete = false;
  } else {
    stats.major = bit->second;
  }
  auto tit = parsed.bools.find("truncated");
  if (tit == parsed.bools.end()) {
    complete = false;
  } else {
    stats.truncated = tit->second;
  }
  auto boolean = [&](const char* key, bool* out) {
    auto it = parsed.bools.find(key);
    if (it == parsed.bools.end()) {
      complete = false;
      return;
    }
    *out = it->second;
  };
  boolean("view_delta", &stats.view_delta);
  boolean("view_fallback", &stats.view_fallback);
  double value = 0.0;
  number("candidates", &value);
  stats.candidates = static_cast<int>(value);
  number("swaps", &value);
  stats.swaps = static_cast<int>(value);
  number("view_delta_rows", &value);
  stats.view_delta_rows = static_cast<int>(value);
  number("view_rescan_rows", &value);
  stats.view_rescan_rows = static_cast<int>(value);
  if (!complete) stats = MaintenanceStats();
  if (ok != nullptr) *ok = complete;
  return stats;
}

void MaintenanceHistory::Record(const MaintenanceStats& stats) {
  entries_.push_back(stats);
  if (capacity_ > 0) {
    while (entries_.size() > capacity_) entries_.pop_front();
  }
  ++recorded_;
  if (stats.major) ++major_rounds_;
  total_swaps_ += stats.swaps;
  total_pmt_ms_ += stats.total_ms;
  max_pmt_ms_ = std::max(max_pmt_ms_, stats.total_ms);
}

MaintenanceHistory::Summary MaintenanceHistory::Summarize() const {
  // Lifetime accumulators, not the retained window: evicted rounds keep
  // counting.
  Summary s;
  s.rounds = recorded_;
  s.major_rounds = major_rounds_;
  s.total_swaps = total_swaps_;
  s.total_pmt_ms = total_pmt_ms_;
  s.max_pmt_ms = max_pmt_ms_;
  if (s.rounds > 0) {
    s.mean_pmt_ms = s.total_pmt_ms / static_cast<double>(s.rounds);
  }
  return s;
}

PatternQuality MidasEngine::CurrentQuality() const {
  PatternQuality q = EvaluateQuality(patterns_, eval_->universe().size());
  return q;
}

PatternQuality EvaluateQuality(const PatternSet& set, size_t universe_size) {
  PatternQuality q;
  q.scov = set.FScov(universe_size);
  q.lcov = set.FLcov();
  q.div = set.FDiv();
  double sum_cog = 0.0;
  for (const auto& [pid, p] : set.patterns()) {
    sum_cog += p.cog;
    q.cog_max = std::max(q.cog_max, p.cog);
  }
  q.cog_avg = set.size() == 0 ? 0.0 : sum_cog / static_cast<double>(set.size());
  return q;
}

FromScratchResult RunFromScratch(const GraphDatabase& db,
                                 const MidasConfig& config, bool plus_plus,
                                 uint64_t seed) {
  FromScratchResult result;
  obs::TraceSpan total_span("midas_scratch_total_ms", &result.total_ms);
  Rng rng(seed);
  TaskPool pool(ResolveNumThreads(config.num_threads));

  CatapultConfig select;
  select.budget = config.budget;
  select.walk = config.walk;
  select.pcp_starts = config.pcp_starts;
  select.sample_cap = config.sample_cap;
  select.pool = &pool;

  if (plus_plus) {
    // CATAPULT++: FCT features + FCT-/IFE-indices.
    FctSet fcts = [&] {
      obs::TraceSpan span("midas_scratch_mine_ms", &result.mine_ms);
      return FctSet::Mine(db, config.fct, &pool);
    }();

    obs::TraceSpan cluster_span("midas_scratch_cluster_ms",
                                &result.cluster_ms);
    ClusterSet clusters =
        ClusterSet::Build(db, fcts, config.cluster, rng, &pool);
    std::map<ClusterId, Csg> csgs;
    for (const auto& [cid, c] : clusters.clusters()) {
      csgs.emplace(cid, Csg::Build(db, c.members));
    }
    cluster_span.Stop();

    obs::TraceSpan index_span("midas_scratch_index_ms", &result.index_ms);
    FctIndex fct_index = FctIndex::Build(db, fcts);
    IfeIndex ife_index = IfeIndex::Build(db, fcts);
    index_span.Stop();

    obs::TraceSpan select_span("midas_scratch_select_ms", &result.select_ms);
    result.patterns = SelectCannedPatterns(db, fcts, csgs, select, rng,
                                           &fct_index, &ife_index);
    select_span.Stop();
  } else {
    // Plain CATAPULT: frequent (non-closed) subtree features, no indices.
    obs::TraceSpan mine_span("midas_scratch_mine_ms", &result.mine_ms);
    TreeMinerConfig miner;
    miner.min_support = config.fct.sup_min;
    miner.max_edges = config.fct.max_edges;
    miner.pool = &pool;
    GraphView view = MakeView(db);
    std::vector<MinedTree> trees = MineFrequentTrees(view, miner);
    // The paper still selects from CSGs whose weights need edge occurrence
    // lists; reuse the FctSet container for those (mining cost dominated by
    // the frequent-subtree pass above).
    FctSet fcts = FctSet::Mine(db, config.fct, &pool);
    mine_span.Stop();

    obs::TraceSpan cluster_span("midas_scratch_cluster_ms",
                                &result.cluster_ms);
    std::vector<Graph> feature_trees;
    std::vector<IdSet> occurrences;
    for (MinedTree& t : trees) {
      feature_trees.push_back(std::move(t.tree));
      occurrences.push_back(std::move(t.occurrences));
    }
    ClusterSet clusters = ClusterSet::Build(
        db, FeatureSpace(std::move(feature_trees), std::move(occurrences)),
        config.cluster, rng, &pool);
    std::map<ClusterId, Csg> csgs;
    for (const auto& [cid, c] : clusters.clusters()) {
      csgs.emplace(cid, Csg::Build(db, c.members));
    }
    cluster_span.Stop();

    obs::TraceSpan select_span("midas_scratch_select_ms", &result.select_ms);
    result.patterns =
        SelectCannedPatterns(db, fcts, csgs, select, rng, nullptr, nullptr);
    select_span.Stop();
  }
  total_span.Stop();  // before the return copies/moves result.total_ms
  return result;
}

}  // namespace midas
