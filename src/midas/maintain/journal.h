#ifndef MIDAS_MAINTAIN_JOURNAL_H_
#define MIDAS_MAINTAIN_JOURNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "midas/common/io.h"
#include "midas/graph/graph_database.h"
#include "midas/select/pattern.h"

namespace midas {

/// Write-ahead batch journal for failure-atomic maintenance rounds.
///
/// Protocol (see MidasEngine::ApplyUpdate and RecoverEngine):
///   1. Before any state mutation the engine appends one *batch* record —
///      the full ΔD (insertions as gspan text, deletion ids) plus the round
///      sequence number — and fsyncs it.
///   2. After the round completes, the engine appends a *commit* record
///      carrying the post-round pattern panel, and fsyncs again.
///
/// A crash at any point therefore loses at most the in-flight round: on
/// recovery, rounds with both records are replayed against the last
/// snapshot (batch re-applied, committed panel reinstalled verbatim), and a
/// trailing batch record without its commit is dropped as "in flight".
///
/// Record framing: `@<type> <seq> <payload-bytes> <crc32>\n<payload>\n`,
/// type `B` (batch) or `C` (commit). The CRC covers the payload bytes, so a
/// torn tail — short write of either the header or the payload — is
/// detected and tolerated, while anything before it is trusted. The payload
/// is plain text (gspan / pattern-set formats from graph_io.h and
/// pattern_io.h) to keep journals greppable in incident response.
class UpdateJournal {
 public:
  UpdateJournal() = default;
  ~UpdateJournal();

  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  /// Opens (creating if absent) the journal at `path` for appending; the
  /// creation is made durable with a parent-directory fsync. All I/O goes
  /// through `fs` (nullptr = the real POSIX backend).
  bool Open(const std::string& path, std::string* error = nullptr,
            io::FileSystem* fs = nullptr);
  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends + fsyncs the intent record for round `seq`. Insertions are
  /// serialized with label names resolved through `dict`. Returns false on
  /// I/O failure (the engine then refuses to start the round — state is
  /// untouched, so no recovery is needed).
  bool AppendBatch(uint64_t seq, const BatchUpdate& batch,
                   const LabelDictionary& dict, std::string* error = nullptr);

  /// Appends + fsyncs the lineage record (`@L`) for round `seq`, carrying
  /// the round's provenance-ledger delta (obs/lineage.h serialization).
  /// Written between the batch and commit records; a crash before the
  /// commit drops the round — and with it the delta — atomically.
  bool AppendLineage(uint64_t seq, const std::string& payload,
                     std::string* error = nullptr);

  /// Appends + fsyncs the commit record for round `seq`, carrying the
  /// post-round panel.
  bool AppendCommit(uint64_t seq, const PatternSet& panel,
                    const LabelDictionary& dict, std::string* error = nullptr);

  /// Truncates the journal to empty — called right after a snapshot
  /// checkpoint makes the journaled history redundant. The truncation is
  /// fsynced (file and parent directory) before returning.
  bool Reset(std::string* error = nullptr);

 private:
  bool AppendRecord(char type, uint64_t seq, const std::string& payload,
                    std::string* error);

  std::unique_ptr<io::WritableFile> file_;
  io::FileSystem* fs_ = nullptr;
  std::string path_;
};

/// One journaled round as read back from disk.
struct JournalRound {
  uint64_t seq = 0;
  BatchUpdate batch;
  bool committed = false;  ///< commit record present and intact
  PatternSet panel;        ///< post-round panel (only when committed)
  /// Provenance-ledger delta (`@L` payload) for the round; empty for
  /// journals written before lineage existed or when the append failed
  /// (recovery then reconciles synthetically).
  std::string lineage_delta;
};

/// Result of scanning a journal file.
struct JournalReadResult {
  bool ok = false;           ///< file existed and was readable
  std::string error;         ///< why ok is false, or why the scan stopped
  std::vector<JournalRound> rounds;  ///< in append order
  /// True when a torn/corrupt tail was dropped (expected after a crash
  /// mid-append; everything before the tear is intact and returned).
  bool tail_truncated = false;
};

/// Scans a journal, validating framing and CRCs. Labels from insertion
/// graphs and panel patterns are interned into `dict` by name. A missing
/// file yields ok=true with zero rounds (an empty journal and no journal
/// are equivalently "nothing to replay"). Reads through `fs` (nullptr = the
/// real POSIX backend).
JournalReadResult ReadJournal(const std::string& path, LabelDictionary& dict,
                              io::FileSystem* fs = nullptr);

}  // namespace midas

#endif  // MIDAS_MAINTAIN_JOURNAL_H_
