#ifndef MIDAS_QUERYFORM_SESSION_H_
#define MIDAS_QUERYFORM_SESSION_H_

#include <string>
#include <vector>

#include "midas/graph/graph.h"

namespace midas {

/// The canvas state machine behind a direct-manipulation GUI (Panel 2 of
/// the paper's Figure 1). Actions mirror the interface's atomic operations:
/// place a vertex, draw an edge, drag-and-drop a canned pattern
/// (pattern-at-a-time mode), delete a vertex (cascading its incident edges,
/// as in Example 1.1's "removes a H and its associated edge"), delete an
/// edge, undo. Every action costs one formulation step — the quantity the
/// step model (formulation.h) predicts and the user study measures.
class FormulationSession {
 public:
  enum class ActionType {
    kAddVertex,
    kAddEdge,
    kDropPattern,
    kDeleteVertex,
    kDeleteEdge,
    kUndo,
  };

  struct Action {
    ActionType type;
    std::string detail;  ///< human-readable, for session transcripts
  };

  FormulationSession() = default;

  /// Places a vertex; returns its canvas id.
  VertexId AddVertex(Label label);
  /// Draws an edge between two live vertices; false if invalid.
  bool AddEdge(VertexId u, VertexId v);
  /// Drops a canned pattern onto the canvas; returns the placed vertex ids
  /// (in pattern vertex order).
  std::vector<VertexId> DropPattern(const Graph& pattern);
  /// Deletes a vertex and cascades its incident edges; false if dead/bad id.
  bool DeleteVertex(VertexId v);
  /// Deletes one edge; false if absent.
  bool DeleteEdge(VertexId u, VertexId v);
  /// Reverts the most recent canvas-changing action. False when nothing to
  /// undo. Undo itself counts as a step but is not undoable.
  bool Undo();

  /// The current query: live vertices compacted to dense ids.
  Graph Canvas() const;

  /// Total actions performed (the session's formulation step count).
  size_t steps() const { return steps_; }
  /// Number of live vertices on the canvas.
  size_t LiveVertices() const;
  size_t LiveEdges() const { return canvas_.NumEdges(); }
  bool IsVertexLive(VertexId v) const {
    return v < alive_.size() && alive_[v];
  }

  const std::vector<Action>& log() const { return log_; }

 private:
  struct Snapshot {
    Graph canvas;
    std::vector<bool> alive;
  };
  void Checkpoint(ActionType type, std::string detail);

  Graph canvas_;              // grows only; dead vertices keep their slots
  std::vector<bool> alive_;
  size_t steps_ = 0;
  std::vector<Action> log_;
  std::vector<Snapshot> undo_stack_;
};

}  // namespace midas

#endif  // MIDAS_QUERYFORM_SESSION_H_
