#include "midas/queryform/formulation.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "midas/graph/closure_graph.h"

#include "midas/graph/subgraph_iso.h"

namespace midas {

size_t EdgeAtATimeSteps(const Graph& query) {
  return query.NumVertices() + query.NumEdges();
}

namespace {

// Finds an embedding of pattern into query avoiding `used` vertices.
// Returns empty when none exists.
std::vector<VertexId> DisjointEmbedding(const Graph& pattern,
                                        const Graph& query,
                                        const std::vector<bool>& used) {
  // Build the induced subgraph on unused vertices, then embed.
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < query.NumVertices(); ++v) {
    if (!used[v]) keep.push_back(v);
  }
  if (keep.size() < pattern.NumVertices()) return {};
  Graph sub = query.InducedSubgraph(keep);
  auto embeddings = FindEmbeddings(pattern, sub, 1);
  if (embeddings.empty()) return {};
  std::vector<VertexId> mapped;
  mapped.reserve(embeddings[0].size());
  for (VertexId local : embeddings[0]) mapped.push_back(keep[local]);
  return mapped;
}

}  // namespace

FormulationPlan PlanFormulation(const Graph& query,
                                const PatternSet& patterns) {
  FormulationPlan plan;

  // Largest-first greedy (more edges covered per drag).
  std::vector<const CannedPattern*> ordered;
  for (const auto& [pid, p] : patterns.patterns()) ordered.push_back(&p);
  std::sort(ordered.begin(), ordered.end(),
            [](const CannedPattern* a, const CannedPattern* b) {
              return a->graph.NumEdges() > b->graph.NumEdges();
            });

  std::vector<bool> used(query.NumVertices(), false);
  size_t covered_vertices = 0;
  size_t covered_edges = 0;

  for (const CannedPattern* p : ordered) {
    if (p->graph.NumEdges() == 0) continue;
    // A pattern can be reused as long as it still fits.
    while (true) {
      std::vector<VertexId> embedding =
          DisjointEmbedding(p->graph, query, used);
      if (embedding.empty()) break;
      for (VertexId qv : embedding) used[qv] = true;
      covered_vertices += p->graph.NumVertices();
      covered_edges += p->graph.NumEdges();
      ++plan.patterns_used;
      plan.used_any_pattern = true;
    }
  }

  plan.vertices_added = query.NumVertices() - covered_vertices;
  plan.edges_added = query.NumEdges() - covered_edges;
  plan.steps = plan.patterns_used + plan.vertices_added + plan.edges_added;
  return plan;
}

EditPlan PlanFormulationWithEdits(const Graph& query,
                                  const PatternSet& patterns) {
  EditPlan plan;
  std::vector<bool> used(query.NumVertices(), false);
  std::set<std::pair<VertexId, VertexId>> covered_edges;

  // One partial-use proposal of a pattern against the unused remainder.
  struct Proposal {
    int benefit = 0;
    std::vector<VertexId> covered_vertices;             // query ids
    std::vector<std::pair<VertexId, VertexId>> edges;   // realized query edges
    size_t deletions = 0;
  };
  auto propose = [&](const Graph& pattern) {
    Proposal prop;
    std::vector<VertexId> keep;
    for (VertexId v = 0; v < query.NumVertices(); ++v) {
      if (!used[v]) keep.push_back(v);
    }
    if (keep.empty() || pattern.NumEdges() == 0) return prop;
    Graph remainder = query.InducedSubgraph(keep);
    std::vector<int> mapping = GreedyAlign(pattern, remainder);

    size_t mapped_vertices = 0;
    for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
      if (mapping[pv] >= 0) {
        ++mapped_vertices;
        prop.covered_vertices.push_back(
            keep[static_cast<size_t>(mapping[pv])]);
      }
    }
    size_t realized_edges = 0;
    size_t edge_deletions = 0;
    for (const auto& [pu, pv] : pattern.Edges()) {
      if (mapping[pu] >= 0 && mapping[pv] >= 0) {
        VertexId qu = keep[static_cast<size_t>(mapping[pu])];
        VertexId qv = keep[static_cast<size_t>(mapping[pv])];
        if (query.HasEdge(qu, qv)) {
          ++realized_edges;
          prop.edges.push_back(qu < qv ? std::make_pair(qu, qv)
                                       : std::make_pair(qv, qu));
        } else {
          ++edge_deletions;  // edge between kept vertices: delete alone
        }
      }
      // Edges with an unmapped endpoint cascade with the vertex deletion.
    }
    size_t vertex_deletions = pattern.NumVertices() - mapped_vertices;
    prop.deletions = vertex_deletions + edge_deletions;
    // Building the covered part atom-by-atom costs one step per covered
    // vertex/edge; the pattern route costs 1 drop + the trimming.
    prop.benefit = static_cast<int>(mapped_vertices + realized_edges) -
                   static_cast<int>(1 + prop.deletions);
    return prop;
  };

  while (true) {
    Proposal best;
    for (const auto& [pid, p] : patterns.patterns()) {
      Proposal prop = propose(p.graph);
      if (prop.benefit > best.benefit) best = std::move(prop);
    }
    if (best.benefit <= 0) break;
    for (VertexId qv : best.covered_vertices) used[qv] = true;
    for (const auto& e : best.edges) covered_edges.insert(e);
    ++plan.patterns_used;
    plan.elements_deleted += best.deletions;
    plan.used_any_pattern = true;
  }

  size_t used_count = 0;
  for (bool u : used) used_count += u ? 1 : 0;
  plan.vertices_added = query.NumVertices() - used_count;
  plan.edges_added = query.NumEdges() - covered_edges.size();
  plan.steps = plan.patterns_used + plan.elements_deleted +
               plan.vertices_added + plan.edges_added;
  return plan;
}

double MissedPercentage(const std::vector<Graph>& queries,
                        const PatternSet& patterns) {
  if (queries.empty()) return 0.0;
  size_t missed = 0;
  for (const Graph& q : queries) {
    FormulationPlan plan = PlanFormulation(q, patterns);
    if (!plan.used_any_pattern) ++missed;
  }
  return 100.0 * static_cast<double>(missed) /
         static_cast<double>(queries.size());
}

double MeanSteps(const std::vector<Graph>& queries,
                 const PatternSet& patterns) {
  if (queries.empty()) return 0.0;
  double total = 0.0;
  for (const Graph& q : queries) {
    total += static_cast<double>(PlanFormulation(q, patterns).steps);
  }
  return total / static_cast<double>(queries.size());
}

double ReductionRatio(const std::vector<Graph>& queries,
                      const PatternSet& baseline, const PatternSet& subject) {
  if (queries.empty()) return 0.0;
  double total = 0.0;
  size_t counted = 0;
  for (const Graph& q : queries) {
    double sb = static_cast<double>(PlanFormulation(q, baseline).steps);
    double ss = static_cast<double>(PlanFormulation(q, subject).steps);
    if (sb <= 0.0) continue;
    total += (sb - ss) / sb;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace midas
