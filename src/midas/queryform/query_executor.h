#ifndef MIDAS_QUERYFORM_QUERY_EXECUTOR_H_
#define MIDAS_QUERYFORM_QUERY_EXECUTOR_H_

#include <cstddef>

#include "midas/common/id_set.h"
#include "midas/index/fct_index.h"
#include "midas/index/ife_index.h"

namespace midas {

/// Subgraph-query execution — the backend a visual GUI ultimately calls
/// once the user finishes formulating (Section 1's "graph querying
/// framework"). Execution follows the classic filter-verify paradigm the
/// indices were designed for: the FCT-/IFE-index dominance filters prune
/// the database to candidate graphs, then VF2 verifies each survivor.
///
/// The same machinery powers pattern coverage evaluation internally
/// (select/pattern.h); this facade exposes it as a public query API with
/// filtering statistics, so deployments can monitor filter effectiveness.
class QueryExecutor {
 public:
  struct Result {
    IdSet matches;             ///< graphs containing the query
    size_t candidates = 0;     ///< graphs that survived the index filters
    size_t verified = 0;       ///< VF2 tests actually run
    double filter_ms = 0.0;    ///< time in the dominance filters
    double verify_ms = 0.0;    ///< time in VF2 verification
  };

  /// Indices may be null (pure VF2 scan). Non-owning; all must outlive the
  /// executor.
  QueryExecutor(const GraphDatabase& db, const FctIndex* fct_index = nullptr,
                const IfeIndex* ife_index = nullptr)
      : db_(&db), fct_index_(fct_index), ife_index_(ife_index) {}

  /// Finds every data graph containing the query. `limit` > 0 stops after
  /// that many matches (GUI result pages).
  Result Execute(const Graph& query, size_t limit = 0) const;

  /// Cumulative statistics across Execute calls.
  struct Totals {
    size_t queries = 0;
    size_t candidates = 0;
    size_t verified = 0;
    size_t matches = 0;
  };
  const Totals& totals() const { return totals_; }

 private:
  const GraphDatabase* db_;
  const FctIndex* fct_index_;
  const IfeIndex* ife_index_;
  mutable Totals totals_;
};

}  // namespace midas

#endif  // MIDAS_QUERYFORM_QUERY_EXECUTOR_H_
