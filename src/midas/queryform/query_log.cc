#include "midas/queryform/query_log.h"

#include "midas/graph/subgraph_iso.h"

namespace midas {

void QueryLog::Record(Graph query) {
  queries_.push_back(std::move(query));
  while (queries_.size() > capacity_) queries_.pop_front();
}

void QueryLog::SetCapacity(size_t capacity) {
  capacity_ = capacity;
  while (queries_.size() > capacity_) queries_.pop_front();
}

double QueryLog::PatternWeight(const Graph& pattern) const {
  if (queries_.empty() || pattern.NumEdges() == 0) return 0.0;
  size_t hits = 0;
  for (const Graph& q : queries_) {
    if (ContainsSubgraph(pattern, q)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(queries_.size());
}

}  // namespace midas
