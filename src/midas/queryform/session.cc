#include "midas/queryform/session.h"

namespace midas {

void FormulationSession::Checkpoint(ActionType type, std::string detail) {
  undo_stack_.push_back({canvas_, alive_});
  log_.push_back({type, std::move(detail)});
  ++steps_;
}

VertexId FormulationSession::AddVertex(Label label) {
  Checkpoint(ActionType::kAddVertex,
             "add vertex #" + std::to_string(canvas_.NumVertices()));
  VertexId v = canvas_.AddVertex(label);
  alive_.push_back(true);
  return v;
}

bool FormulationSession::AddEdge(VertexId u, VertexId v) {
  if (!IsVertexLive(u) || !IsVertexLive(v)) return false;
  if (u == v || canvas_.HasEdge(u, v)) return false;
  Checkpoint(ActionType::kAddEdge, "add edge " + std::to_string(u) + "-" +
                                       std::to_string(v));
  canvas_.AddEdge(u, v);
  return true;
}

std::vector<VertexId> FormulationSession::DropPattern(const Graph& pattern) {
  Checkpoint(ActionType::kDropPattern,
             "drop pattern with " + std::to_string(pattern.NumVertices()) +
                 " vertices / " + std::to_string(pattern.NumEdges()) +
                 " edges");
  std::vector<VertexId> placed;
  placed.reserve(pattern.NumVertices());
  for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
    placed.push_back(canvas_.AddVertex(pattern.label(pv)));
    alive_.push_back(true);
  }
  for (const auto& [pu, pv] : pattern.Edges()) {
    canvas_.AddEdge(placed[pu], placed[pv]);
  }
  return placed;
}

bool FormulationSession::DeleteVertex(VertexId v) {
  if (!IsVertexLive(v)) return false;
  Checkpoint(ActionType::kDeleteVertex, "delete vertex " + std::to_string(v));
  // Cascade incident edges (copy the neighbor list first: RemoveEdge
  // mutates it).
  std::vector<VertexId> neighbors = canvas_.Neighbors(v);
  for (VertexId w : neighbors) canvas_.RemoveEdge(v, w);
  alive_[v] = false;
  return true;
}

bool FormulationSession::DeleteEdge(VertexId u, VertexId v) {
  if (!IsVertexLive(u) || !IsVertexLive(v) || !canvas_.HasEdge(u, v)) {
    return false;
  }
  Checkpoint(ActionType::kDeleteEdge, "delete edge " + std::to_string(u) +
                                          "-" + std::to_string(v));
  canvas_.RemoveEdge(u, v);
  return true;
}

bool FormulationSession::Undo() {
  if (undo_stack_.empty()) return false;
  canvas_ = std::move(undo_stack_.back().canvas);
  alive_ = std::move(undo_stack_.back().alive);
  undo_stack_.pop_back();
  log_.push_back({ActionType::kUndo, "undo"});
  ++steps_;
  return true;
}

Graph FormulationSession::Canvas() const {
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < canvas_.NumVertices(); ++v) {
    if (alive_[v]) keep.push_back(v);
  }
  return canvas_.InducedSubgraph(keep);
}

size_t FormulationSession::LiveVertices() const {
  size_t n = 0;
  for (bool a : alive_) n += a ? 1 : 0;
  return n;
}

}  // namespace midas
