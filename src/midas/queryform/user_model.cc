#include "midas/queryform/user_model.h"

#include <algorithm>

namespace midas {

SimulatedFormulation SimulateUser(const FormulationPlan& plan,
                                  size_t panel_size,
                                  const UserModelConfig& config, Rng& rng) {
  SimulatedFormulation out;
  out.steps = plan.steps;

  auto jittered = [&](double base) {
    double f = 1.0 + config.jitter * (2.0 * rng.UniformReal() - 1.0);
    return base * std::max(0.1, f);
  };

  double vmt_total = 0.0;
  for (size_t i = 0; i < plan.patterns_used; ++i) {
    double vmt = jittered(config.vmt_base_seconds +
                          config.vmt_per_pattern *
                              static_cast<double>(panel_size));
    vmt_total += vmt;
    out.qft_seconds += vmt + jittered(config.pattern_drag_seconds);
  }
  for (size_t i = 0; i < plan.vertices_added; ++i) {
    out.qft_seconds += jittered(config.vertex_seconds);
  }
  for (size_t i = 0; i < plan.edges_added; ++i) {
    out.qft_seconds += jittered(config.edge_seconds);
  }
  out.vmt_seconds = plan.patterns_used == 0
                        ? 0.0
                        : vmt_total / static_cast<double>(plan.patterns_used);
  return out;
}

SimulatedFormulation SimulateUsers(const Graph& query,
                                   const PatternSet& patterns, int trials,
                                   const UserModelConfig& config, Rng& rng) {
  FormulationPlan plan = PlanFormulation(query, patterns);
  SimulatedFormulation mean;
  mean.steps = plan.steps;
  if (trials <= 0) return mean;
  for (int t = 0; t < trials; ++t) {
    SimulatedFormulation one =
        SimulateUser(plan, patterns.size(), config, rng);
    mean.qft_seconds += one.qft_seconds;
    mean.vmt_seconds += one.vmt_seconds;
  }
  mean.qft_seconds /= trials;
  mean.vmt_seconds /= trials;
  return mean;
}

SimulatedFormulation SimulateUser(const EditPlan& plan, size_t panel_size,
                                  const UserModelConfig& config, Rng& rng) {
  // Price the common part via the strict model, then add trimming time.
  FormulationPlan base;
  base.patterns_used = plan.patterns_used;
  base.vertices_added = plan.vertices_added;
  base.edges_added = plan.edges_added;
  base.steps = plan.steps;
  SimulatedFormulation out = SimulateUser(base, panel_size, config, rng);
  out.steps = plan.steps;
  for (size_t i = 0; i < plan.elements_deleted; ++i) {
    double f = 1.0 + config.jitter * (2.0 * rng.UniformReal() - 1.0);
    out.qft_seconds += config.delete_seconds * std::max(0.1, f);
  }
  return out;
}

SimulatedFormulation SimulateUsersWithEdits(const Graph& query,
                                            const PatternSet& patterns,
                                            int trials,
                                            const UserModelConfig& config,
                                            Rng& rng) {
  EditPlan plan = PlanFormulationWithEdits(query, patterns);
  SimulatedFormulation mean;
  mean.steps = plan.steps;
  if (trials <= 0) return mean;
  for (int t = 0; t < trials; ++t) {
    SimulatedFormulation one = SimulateUser(plan, patterns.size(), config,
                                            rng);
    mean.qft_seconds += one.qft_seconds;
    mean.vmt_seconds += one.vmt_seconds;
  }
  mean.qft_seconds /= trials;
  mean.vmt_seconds /= trials;
  return mean;
}

}  // namespace midas
