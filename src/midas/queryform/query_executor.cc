#include "midas/queryform/query_executor.h"

#include "midas/common/timer.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {

QueryExecutor::Result QueryExecutor::Execute(const Graph& query,
                                             size_t limit) const {
  Result result;
  Timer filter_timer;
  IdSet candidates(db_->Ids());
  if (fct_index_ != nullptr) {
    candidates = fct_index_->CandidateGraphs(
        fct_index_->FeatureCounts(query), candidates);
  }
  if (ife_index_ != nullptr) {
    candidates = ife_index_->CandidateGraphs(ife_index_->EdgeCounts(query),
                                             candidates);
  }
  result.filter_ms = filter_timer.ElapsedMs();
  result.candidates = candidates.size();

  Timer verify_timer;
  for (GraphId id : candidates) {
    const Graph* g = db_->Find(id);
    if (g == nullptr) continue;
    ++result.verified;
    if (ContainsSubgraph(query, *g)) {
      result.matches.Insert(id);
      if (limit > 0 && result.matches.size() >= limit) break;
    }
  }
  result.verify_ms = verify_timer.ElapsedMs();

  ++totals_.queries;
  totals_.candidates += result.candidates;
  totals_.verified += result.verified;
  totals_.matches += result.matches.size();
  return result;
}

}  // namespace midas
