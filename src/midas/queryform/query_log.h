#ifndef MIDAS_QUERYFORM_QUERY_LOG_H_
#define MIDAS_QUERYFORM_QUERY_LOG_H_

#include <deque>

#include "midas/graph/graph.h"

namespace midas {

/// A sliding-window log of formulated subgraph queries.
///
/// The paper's framework is query-log-oblivious because public repositories
/// rarely ship logs, but Section 3.5 notes that MIDAS "can be easily
/// extended to accommodate query logs by considering the weight of a
/// pattern based on its frequency in the log during multi-scan swapping".
/// This class implements that extension: GUIs record each formulated query,
/// and the swap stage boosts the score of patterns that keep appearing in
/// what users actually ask (see SwapConfig::query_log).
class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  /// Appends a query; the oldest entry is evicted beyond capacity.
  void Record(Graph query);

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  size_t capacity() const { return capacity_; }

  /// Shrinks/extends the window (evicting oldest entries if needed).
  void SetCapacity(size_t capacity);

  /// Fraction of logged queries that contain the pattern (in [0, 1]);
  /// 0 when the log is empty. One VF2 containment test per logged query.
  double PatternWeight(const Graph& pattern) const;

  const std::deque<Graph>& queries() const { return queries_; }

 private:
  std::deque<Graph> queries_;
  size_t capacity_;
};

}  // namespace midas

#endif  // MIDAS_QUERYFORM_QUERY_LOG_H_
