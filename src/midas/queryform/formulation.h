#ifndef MIDAS_QUERYFORM_FORMULATION_H_
#define MIDAS_QUERYFORM_FORMULATION_H_

#include <vector>

#include "midas/select/pattern.h"

namespace midas {

/// Visual query formulation step model (Section 7.1).
///
/// A canned pattern p can be used for query Q iff p ⊆ Q, and the subgraphs
/// of Q realized by different used patterns do not overlap (the paper's two
/// simplifying assumptions for the automated study). One pattern drag-and-
/// drop costs one step; every leftover vertex and edge costs one step each.
/// The edge-at-a-time baseline costs |V_Q| + |E_Q| steps.
struct FormulationPlan {
  size_t patterns_used = 0;
  size_t vertices_added = 0;
  size_t edges_added = 0;
  size_t steps = 0;
  bool used_any_pattern = false;
};

/// Steps for pure edge-at-a-time construction.
size_t EdgeAtATimeSteps(const Graph& query);

/// Greedy pattern-at-a-time plan: repeatedly place the largest pattern that
/// still embeds into the untouched part of the query.
FormulationPlan PlanFormulation(const Graph& query, const PatternSet& patterns);

/// Extended plan allowing pattern *editing* (the paper's user study, and
/// Example 1.1: drop p4, then delete an H and its edge). A pattern that
/// does not fully embed can still be dropped and trimmed: the plan charges
/// one step per deleted pattern vertex/edge on top of the drop. A partial
/// use is taken only when it beats building the covered part atom-by-atom.
struct EditPlan {
  size_t patterns_used = 0;
  size_t vertices_added = 0;
  size_t edges_added = 0;
  size_t elements_deleted = 0;  ///< vertices+edges trimmed off used patterns
  size_t steps = 0;
  bool used_any_pattern = false;
};

EditPlan PlanFormulationWithEdits(const Graph& query,
                                  const PatternSet& patterns);

/// Missed percentage MP: share of queries that no pattern helps (in %).
double MissedPercentage(const std::vector<Graph>& queries,
                        const PatternSet& patterns);

/// Mean pattern-at-a-time steps over a query set.
double MeanSteps(const std::vector<Graph>& queries,
                 const PatternSet& patterns);

/// Reduction ratio μ = mean over queries of
/// (steps_baseline - steps_subject) / steps_baseline; positive means the
/// subject pattern set needs fewer steps.
double ReductionRatio(const std::vector<Graph>& queries,
                      const PatternSet& baseline, const PatternSet& subject);

}  // namespace midas

#endif  // MIDAS_QUERYFORM_FORMULATION_H_
