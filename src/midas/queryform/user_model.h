#ifndef MIDAS_QUERYFORM_USER_MODEL_H_
#define MIDAS_QUERYFORM_USER_MODEL_H_

#include "midas/common/rng.h"
#include "midas/queryform/formulation.h"

namespace midas {

/// Deterministic surrogate for the paper's 25-volunteer user study
/// (Section 7.2).
///
/// The step model of formulation.h yields step counts; this model converts
/// them into query formulation time (QFT) and visual mapping time (VMT)
/// seconds, calibrated to the paper's observed magnitudes: Example 1.1
/// reports 145 s for 41 edge-at-a-time steps (~3.5 s/step) and 102 s for 20
/// pattern-mode steps (~5 s/step including pattern browsing), and Figure 9
/// reports VMT in the 6.4-9.4 s band for |P| = 30. Multiplicative jitter
/// emulates inter-subject variability.
struct UserModelConfig {
  double vertex_seconds = 2.0;        ///< one vertex placement
  double edge_seconds = 2.6;          ///< one edge drawing
  double pattern_drag_seconds = 3.0;  ///< drag-and-drop of a chosen pattern
  double delete_seconds = 1.5;        ///< trimming a dropped pattern
  double vmt_base_seconds = 4.5;      ///< locating a pattern in the panel
  double vmt_per_pattern = 0.1;       ///< browse cost growing with |P|
  double jitter = 0.15;               ///< lognormal-ish user variability
};

/// One simulated user's timing for a plan.
struct SimulatedFormulation {
  double qft_seconds = 0.0;  ///< total formulation time (includes VMT)
  double vmt_seconds = 0.0;  ///< mean visual mapping time per pattern use
  size_t steps = 0;
};

/// Simulates one user executing the plan against a panel of `panel_size`
/// canned patterns.
SimulatedFormulation SimulateUser(const FormulationPlan& plan,
                                  size_t panel_size,
                                  const UserModelConfig& config, Rng& rng);

/// Mean QFT/VMT/steps over `trials` simulated users formulating `query`
/// with `patterns`.
SimulatedFormulation SimulateUsers(const Graph& query,
                                   const PatternSet& patterns, int trials,
                                   const UserModelConfig& config, Rng& rng);

/// Edit-capable variants: users may drop an oversized pattern and trim it
/// (the paper's actual user study jettisons the p ⊆ Q restriction).
SimulatedFormulation SimulateUser(const EditPlan& plan, size_t panel_size,
                                  const UserModelConfig& config, Rng& rng);
SimulatedFormulation SimulateUsersWithEdits(const Graph& query,
                                            const PatternSet& patterns,
                                            int trials,
                                            const UserModelConfig& config,
                                            Rng& rng);

}  // namespace midas

#endif  // MIDAS_QUERYFORM_USER_MODEL_H_
