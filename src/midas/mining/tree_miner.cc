#include "midas/mining/tree_miner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "midas/graph/canonical.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {

GraphView MakeView(const GraphDatabase& db) {
  GraphView view;
  view.reserve(db.size());
  for (const auto& [id, g] : db.graphs()) view.emplace_back(id, &g);
  return view;
}

GraphView MakeView(const GraphDatabase& db, const std::vector<GraphId>& ids) {
  GraphView view;
  view.reserve(ids.size());
  for (GraphId id : ids) {
    const Graph* g = db.Find(id);
    if (g != nullptr) view.emplace_back(id, g);
  }
  return view;
}

std::map<EdgeLabelPair, IdSet> EdgeOccurrences(const GraphView& view) {
  std::map<EdgeLabelPair, IdSet> occ;
  for (const auto& [id, g] : view) {
    for (const EdgeLabelPair& lp : g->DistinctEdgeLabels()) {
      occ[lp].Insert(id);
    }
  }
  return occ;
}

namespace {

// Minimum absolute occurrence count for a support fraction.
size_t MinCount(double min_support, size_t view_size) {
  return static_cast<size_t>(
      std::ceil(min_support * static_cast<double>(view_size) - 1e-9));
}

// Builds the 1-edge tree for an edge label pair.
Graph EdgeTree(const EdgeLabelPair& lp) {
  Graph t;
  VertexId a = t.AddVertex(lp.first);
  VertexId b = t.AddVertex(lp.second);
  t.AddEdge(a, b);
  return t;
}

// Counts occurrences of `tree` among the candidate graph ids, looking up
// graphs through `by_id`. Aborts early when the remaining candidates cannot
// reach `min_count` or the budget runs out. Only proven containments are
// counted, so a budget-truncated result under-counts — it never inflates
// support.
IdSet CountOccurrences(
    const Graph& tree, const IdSet& candidates,
    const std::unordered_map<GraphId, const Graph*>& by_id,
    size_t min_count, ExecBudget* budget, TaskPool* pool) {
  if (pool == nullptr || pool->serial() || TaskPool::OnWorkerThread()) {
    // Serial reference path, with the cannot-reach-threshold early abort.
    IdSet occ;
    size_t remaining = candidates.size();
    for (GraphId id : candidates) {
      if (occ.size() + remaining < min_count) break;
      if (BudgetExhausted(budget)) break;
      --remaining;
      auto it = by_id.find(id);
      if (it == by_id.end()) continue;
      if (ContainsSubgraphBudgeted(tree, *it->second, budget).found) {
        occ.Insert(id);
      }
    }
    return occ;
  }
  // Parallel path: probe every candidate (the early abort only ever fires
  // for trees that end up rejected, so the full scan changes no accepted
  // occurrence list), then merge verdicts in ascending-id order.
  std::vector<GraphId> ids(candidates.begin(), candidates.end());
  std::vector<uint8_t> verdict(ids.size(), 0);
  ParallelFor(
      pool, ids.size(),
      [&](size_t i) {
        auto it = by_id.find(ids[i]);
        if (it == by_id.end()) return;
        if (ContainsSubgraphBudgeted(tree, *it->second, budget).found) {
          verdict[i] = 1;
        }
      },
      budget);
  IdSet occ;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (verdict[i] != 0) occ.Insert(ids[i]);
  }
  return occ;
}

}  // namespace

std::vector<MinedTree> MineFrequentTrees(const GraphView& view,
                                         const TreeMinerConfig& config) {
  obs::TraceSpan mine_span("midas_mining_mine_ms");
  uint64_t extensions_tried = 0;
  uint64_t support_pruned = 0;
  std::vector<MinedTree> result;
  if (view.empty()) return result;
  size_t min_count = std::max<size_t>(1, MinCount(config.min_support,
                                                  view.size()));

  std::unordered_map<GraphId, const Graph*> by_id;
  by_id.reserve(view.size());
  for (const auto& [id, g] : view) by_id.emplace(id, g);

  // Level 1: frequent single edges.
  std::map<EdgeLabelPair, IdSet> edge_occ = EdgeOccurrences(view);
  std::vector<MinedTree> level;
  // Frequent labels each vertex label can extend to, derived from frequent
  // edges: label -> set of partner labels.
  std::unordered_map<Label, std::vector<Label>> partners;
  for (const auto& [lp, occ] : edge_occ) {
    if (occ.size() < min_count) continue;
    MinedTree mt;
    mt.tree = EdgeTree(lp);
    mt.canon = CanonicalTreeString(mt.tree);
    mt.occurrences = occ;
    level.push_back(std::move(mt));
    partners[lp.first].push_back(lp.second);
    if (lp.second != lp.first) partners[lp.second].push_back(lp.first);
  }

  std::unordered_set<std::string> seen;
  for (const MinedTree& mt : level) seen.insert(mt.canon);
  for (MinedTree& mt : level) result.push_back(std::move(mt));

  // Levels 2..max_edges: leaf extensions with frequent edge labels.
  ExecBudget* budget = config.budget;
  std::vector<MinedTree>* frontier = &result;
  size_t frontier_begin = 0;
  size_t frontier_end = result.size();
  for (size_t size = 2;
       size <= config.max_edges && result.size() < config.max_trees &&
       !BudgetExhausted(budget);
       ++size) {
    size_t next_begin = result.size();
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      // NOTE: result may reallocate as we push; take copies of what we need.
      Graph parent_tree = (*frontier)[i].tree;
      IdSet parent_occ = (*frontier)[i].occurrences;
      for (VertexId v = 0; v < parent_tree.NumVertices(); ++v) {
        auto pit = partners.find(parent_tree.label(v));
        if (pit == partners.end()) continue;
        for (Label leaf_label : pit->second) {
          // One step per extension tried, on top of the VF2 charges inside
          // CountOccurrences. On exhaustion the level loop unwinds and the
          // trees mined so far are returned (anytime).
          if (!BudgetCharge(budget)) break;
          ++extensions_tried;
          Graph ext = parent_tree;
          VertexId leaf = ext.AddVertex(leaf_label);
          ext.AddEdge(v, leaf);
          std::string canon = CanonicalTreeString(ext);
          if (!seen.insert(canon).second) continue;
          EdgeLabelPair lp(parent_tree.label(v), leaf_label);
          IdSet candidates =
              IdSet::Intersection(parent_occ, edge_occ[lp]);
          if (candidates.size() < min_count) {
            ++support_pruned;
            continue;
          }
          IdSet occ = CountOccurrences(ext, candidates, by_id, min_count,
                                       budget, config.pool);
          if (occ.size() < min_count) {
            ++support_pruned;
            continue;
          }
          MinedTree mt;
          mt.tree = std::move(ext);
          mt.canon = std::move(canon);
          mt.occurrences = std::move(occ);
          result.push_back(std::move(mt));
          if (result.size() >= config.max_trees) break;
        }
        if (result.size() >= config.max_trees || BudgetExhausted(budget)) {
          break;
        }
      }
      if (result.size() >= config.max_trees || BudgetExhausted(budget)) break;
    }
    frontier_begin = next_begin;
    frontier_end = result.size();
    if (frontier_begin == frontier_end) break;  // no growth
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter("midas_mining_runs_total")->Increment();
    reg.GetCounter("midas_mining_trees_emitted_total")
        ->Increment(result.size());
    reg.GetCounter("midas_mining_extensions_tried_total")
        ->Increment(extensions_tried);
    reg.GetCounter("midas_mining_support_pruned_total")
        ->Increment(support_pruned);
    if (BudgetExhausted(budget)) {
      reg.GetCounter("midas_mining_truncated_total")->Increment();
    }
  }
  return result;
}

std::vector<MinedTree> FilterClosedTrees(const std::vector<MinedTree>& trees,
                                         size_t max_edges) {
  // Group indices by edge count for supertree lookups.
  std::unordered_map<size_t, std::vector<size_t>> by_size;
  for (size_t i = 0; i < trees.size(); ++i) {
    by_size[trees[i].tree.NumEdges()].push_back(i);
  }

  std::vector<MinedTree> closed;
  for (const MinedTree& t : trees) {
    size_t sz = t.tree.NumEdges();
    bool is_closed = true;
    if (sz < max_edges) {
      auto it = by_size.find(sz + 1);
      if (it != by_size.end()) {
        for (size_t j : it->second) {
          const MinedTree& super = trees[j];
          // Equal support + subtree relation => equal occurrence sets for
          // trees, so compare occurrence sets first (cheap) and confirm
          // with a containment check.
          if (super.occurrences == t.occurrences &&
              ContainsSubgraph(t.tree, super.tree)) {
            is_closed = false;
            break;
          }
        }
      }
    }
    if (is_closed) closed.push_back(t);
  }
  return closed;
}

}  // namespace midas
