#ifndef MIDAS_MINING_TREE_MINER_H_
#define MIDAS_MINING_TREE_MINER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "midas/common/budget.h"
#include "midas/common/id_set.h"
#include "midas/common/parallel.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Frequent (closed) tree mining over a graph database, in the spirit of
/// TreeNat [9] (Sections 3.3, 4.2).
///
/// Trees are enumerated level-wise by leaf extension: every (k+1)-edge
/// supertree of a k-edge tree is a leaf extension (attaching an internal edge
/// to a tree would create a cycle), so leaf extensions with frequent edge
/// labels enumerate the complete frequent-tree lattice. Duplicates across
/// parents are merged via canonical strings. Support is counted with VF2
/// against the occurrence list of the parent (support is antitone).

/// A read-only view of (id, graph) pairs — the whole database or a delta.
using GraphView = std::vector<std::pair<GraphId, const Graph*>>;

/// View over all graphs of db, ascending id.
GraphView MakeView(const GraphDatabase& db);
/// View over a subset of ids (missing ids are skipped).
GraphView MakeView(const GraphDatabase& db, const std::vector<GraphId>& ids);

/// A mined tree with its occurrence list.
struct MinedTree {
  Graph tree;
  std::string canon;  ///< canonical tree string (unique per iso class)
  IdSet occurrences;  ///< ids of view graphs containing the tree

  double Support(size_t database_size) const {
    return database_size == 0
               ? 0.0
               : static_cast<double>(occurrences.size()) /
                     static_cast<double>(database_size);
  }
};

struct TreeMinerConfig {
  /// Minimum support as a fraction of the view size (sup_min).
  double min_support = 0.5;
  /// Maximum tree size in edges. The paper observes FCTs stay small; this
  /// caps the lattice exploration.
  size_t max_edges = 4;
  /// Safety valve on the total number of frequent trees mined.
  size_t max_trees = 20000;
  /// Optional execution budget (non-owning; nullptr = unlimited). Charged
  /// per leaf extension tried and inside the VF2 support counts. On
  /// exhaustion mining stops where it stands and returns the trees found so
  /// far — an anytime result: every returned tree met the support threshold
  /// on the occurrences actually counted, but the lattice (and individual
  /// occurrence lists) may be incomplete.
  ExecBudget* budget = nullptr;
  /// Optional task pool (non-owning; nullptr = serial). The lattice walk
  /// stays sequential; the VF2 support count of each extension fans out
  /// over its candidate graphs. The parallel path scans all candidates
  /// (no cannot-reach-threshold early abort), which only changes the
  /// discarded counts of rejected trees — accepted trees and their
  /// occurrence lists are identical at any thread count.
  TaskPool* pool = nullptr;
};

/// All frequent trees of the view (sizes 1..max_edges, in edges).
std::vector<MinedTree> MineFrequentTrees(const GraphView& view,
                                         const TreeMinerConfig& config);

/// Filters mined trees to *closed* trees: a frequent tree is closed iff no
/// one-edge-larger frequent supertree has the same support (Section 3.3).
/// Trees at the max_edges cap are treated as closed (their extensions are
/// outside the mined universe); this convention is applied consistently by
/// both from-scratch mining and incremental maintenance.
std::vector<MinedTree> FilterClosedTrees(const std::vector<MinedTree>& trees,
                                         size_t max_edges);

/// Occurrence lists of every distinct edge label pair in the view.
std::map<EdgeLabelPair, IdSet> EdgeOccurrences(const GraphView& view);

}  // namespace midas

#endif  // MIDAS_MINING_TREE_MINER_H_
