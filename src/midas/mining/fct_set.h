#ifndef MIDAS_MINING_FCT_SET_H_
#define MIDAS_MINING_FCT_SET_H_

#include <map>
#include <string>
#include <vector>

#include "midas/common/id_set.h"
#include "midas/common/parallel.h"
#include "midas/graph/graph_database.h"
#include "midas/mining/tree_miner.h"

namespace midas {

/// One tree in the maintained FCT pool.
struct FctEntry {
  Graph tree;
  std::string canon;
  IdSet occurrences;      ///< current data-graph ids containing the tree
  bool frequent = false;  ///< support >= sup_min
  bool closed = false;    ///< no equal-support frequent supertree in pool
};

/// Maintained set of frequent closed trees with occurrence lists
/// (Sections 4.1-4.2).
///
/// The pool holds every tree whose support is at least sup_min/2 — the
/// paper's relaxed threshold (Lemma 4.5) — so that trees hovering below
/// sup_min are not lost between batch updates. Each entry carries its exact
/// occurrence id-set, which makes deletions pure bookkeeping (Δ⁻ clears
/// bits; no isomorphism tests) and restricts Δ⁺ work to (a) probing pool
/// trees against the new graphs only and (b) probing trees newly frequent
/// *within the delta* against the full database. This realizes the closure
/// property speedup of Lemma 3.4: trees already known closed never trigger a
/// database rescan.
///
/// Exact edge-label occurrence lists are maintained alongside, providing the
/// frequent / infrequent edge universe used by the FCT-/IFE-indices and the
/// CSG edge weights.
class FctSet {
 public:
  struct Config {
    double sup_min = 0.5;
    size_t max_edges = 4;
    size_t max_trees = 20000;
  };

  FctSet() = default;

  /// Mines the pool from scratch. `pool` parallelizes the VF2 support
  /// counts (see TreeMinerConfig::pool).
  static FctSet Mine(const GraphDatabase& db, const Config& config,
                     TaskPool* pool = nullptr);

  /// Incorporates a batch of insertions. `db_after` must already contain the
  /// added graphs. `budget` (non-owning; nullptr = unlimited) bounds the
  /// VF2 probes and the delta mining: on exhaustion the occurrence lists
  /// may *under-count* (a containment not proven within budget is treated
  /// as absent), so supports only ever err low — the pool never keeps a
  /// tree on invented evidence. The missed counts are healed by the next
  /// unbudgeted round or RunFromScratch. `pool` parallelizes the per-entry
  /// probes and the full-database scans of newly frequent delta trees.
  void MaintainAdd(const GraphDatabase& db_after,
                   const std::vector<GraphId>& added_ids,
                   ExecBudget* budget = nullptr, TaskPool* pool = nullptr);

  /// Incorporates a batch of deletions (ids already removed from the db).
  /// Pure occurrence-list bookkeeping — no search, hence no budget.
  void MaintainDelete(const std::vector<GraphId>& removed_ids,
                      size_t db_size_after);

  /// Current frequent closed trees (the FCT set F).
  std::vector<const FctEntry*> FrequentClosedTrees() const;

  /// All pool entries (including sub-threshold shadow trees).
  std::vector<const FctEntry*> PoolEntries() const;

  /// Edge labels with support >= sup_min, with their occurrence sets.
  std::vector<std::pair<EdgeLabelPair, const IdSet*>> FrequentEdges() const;
  /// Edge labels present in the database but with support < sup_min.
  std::vector<std::pair<EdgeLabelPair, const IdSet*>> InfrequentEdges() const;

  const std::map<EdgeLabelPair, IdSet>& edge_occurrences() const {
    return edge_occ_;
  }

  size_t database_size() const { return db_size_; }
  const Config& config() const { return config_; }

  /// Approximate heap footprint (Exp-2 memory report).
  size_t MemoryBytes() const;

 private:
  size_t MinCount(double fraction) const;
  void RecomputeFlags();

  Config config_;
  size_t db_size_ = 0;
  std::map<std::string, FctEntry> pool_;  // keyed by canonical string
  std::map<EdgeLabelPair, IdSet> edge_occ_;
};

}  // namespace midas

#endif  // MIDAS_MINING_FCT_SET_H_
