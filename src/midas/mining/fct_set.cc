#include "midas/mining/fct_set.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "midas/graph/compute_cache.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {

size_t FctSet::MinCount(double fraction) const {
  return std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction * static_cast<double>(db_size_) - 1e-9)));
}

FctSet FctSet::Mine(const GraphDatabase& db, const Config& config,
                    TaskPool* pool) {
  FctSet set;
  set.config_ = config;
  set.db_size_ = db.size();
  GraphView view = MakeView(db);
  set.edge_occ_ = EdgeOccurrences(view);

  TreeMinerConfig miner;
  miner.min_support = config.sup_min / 2.0;  // relaxed pool threshold
  miner.max_edges = config.max_edges;
  miner.max_trees = config.max_trees;
  miner.pool = pool;
  for (MinedTree& mt : MineFrequentTrees(view, miner)) {
    FctEntry entry;
    entry.tree = std::move(mt.tree);
    entry.canon = mt.canon;
    entry.occurrences = std::move(mt.occurrences);
    set.pool_.emplace(std::move(mt.canon), std::move(entry));
  }
  set.RecomputeFlags();
  return set;
}

void FctSet::MaintainAdd(const GraphDatabase& db_after,
                         const std::vector<GraphId>& added_ids,
                         ExecBudget* budget, TaskPool* pool) {
  // 1. Exact edge-occurrence maintenance.
  for (GraphId id : added_ids) {
    const Graph* g = db_after.Find(id);
    if (g == nullptr) continue;
    for (const EdgeLabelPair& lp : g->DistinctEdgeLabels()) {
      edge_occ_[lp].Insert(id);
    }
  }

  // 2. Probe existing pool trees against the new graphs only
  //    (Proposition 4.1: adding a graph containing a CT does not change the
  //    CT universe — just its support). Graphs missing any of the tree's
  //    edge labels are skipped without an isomorphism test.
  {
    // Entries are independent (each only touches its own occurrence set and
    // reads edge_occ_), so the per-entry probes fan out over the pool.
    std::vector<FctEntry*> entries;
    entries.reserve(pool_.size());
    for (auto& [canon, entry] : pool_) entries.push_back(&entry);
    ParallelFor(
        pool, entries.size(),
        [&](size_t e) {
          FctEntry& entry = *entries[e];
          IdSet candidates(
              std::vector<uint32_t>(added_ids.begin(), added_ids.end()));
          for (const EdgeLabelPair& lp : entry.tree.DistinctEdgeLabels()) {
            auto it = edge_occ_.find(lp);
            if (it == edge_occ_.end()) {
              candidates.clear();
              break;
            }
            candidates = IdSet::Intersection(candidates, it->second);
            if (candidates.empty()) break;
          }
          for (GraphId id : candidates) {
            const Graph* g = db_after.Find(id);
            if (g == nullptr) continue;
            if (ContainsSubgraphBudgeted(entry.tree, *g, budget).found) {
              entry.occurrences.Insert(id);
            }
          }
        },
        budget);
  }

  // 3. Mine the delta at the relaxed threshold (Lemma 4.5): a tree that is
  //    newly frequent in D ⊕ Δ but was below the pool threshold in D must
  //    reach sup_min/2 within Δ⁺ itself.
  GraphView delta = MakeView(db_after, added_ids);
  TreeMinerConfig miner;
  miner.min_support = config_.sup_min / 2.0;
  miner.max_edges = config_.max_edges;
  miner.max_trees = config_.max_trees;
  miner.budget = budget;
  miner.pool = pool;
  std::vector<MinedTree> delta_trees = MineFrequentTrees(delta, miner);

  // Corollary 4.3 case (2): trees closed/frequent in the delta but unknown
  // to the pool need one full-database occurrence scan.
  for (MinedTree& mt : delta_trees) {
    if (pool_.count(mt.canon) > 0) continue;
    // Candidate graphs must contain every edge label of the tree.
    IdSet candidates;
    bool first = true;
    for (const EdgeLabelPair& lp : mt.tree.DistinctEdgeLabels()) {
      auto it = edge_occ_.find(lp);
      IdSet empty;
      const IdSet& occ = it == edge_occ_.end() ? empty : it->second;
      if (first) {
        candidates = occ;
        first = false;
      } else {
        candidates = IdSet::Intersection(candidates, occ);
      }
    }
    FctEntry entry;
    entry.tree = std::move(mt.tree);
    entry.canon = mt.canon;
    std::vector<GraphId> ids(candidates.begin(), candidates.end());
    std::vector<uint8_t> verdict(ids.size(), 0);
    const std::string tree_code = GraphContentCode(entry.tree);
    const uint64_t epoch = db_after.epoch();
    ComputeCache& cache = ComputeCache::Global();
    ParallelFor(
        pool, ids.size(),
        [&](size_t i) {
          const Graph* g = db_after.Find(ids[i]);
          if (g == nullptr) return;
          bool contains = false;
          if (!cache.LookupContainment(tree_code, epoch, ids[i], &contains)) {
            IsoOutcome out = ContainsSubgraphBudgeted(entry.tree, *g, budget);
            contains = out.found;
            // Budget-truncated "not found" means "not proven within
            // budget", never "absent" — only exact verdicts are cacheable.
            if (!out.truncated) {
              cache.StoreContainment(tree_code, epoch, ids[i], contains);
            }
          }
          if (contains) verdict[i] = 1;
        },
        budget);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (verdict[i] != 0) entry.occurrences.Insert(ids[i]);
    }
    pool_.emplace(std::move(mt.canon), std::move(entry));
  }

  db_size_ = db_after.size();
  RecomputeFlags();
}

void FctSet::MaintainDelete(const std::vector<GraphId>& removed_ids,
                            size_t db_size_after) {
  for (auto it = edge_occ_.begin(); it != edge_occ_.end();) {
    for (GraphId id : removed_ids) it->second.Erase(id);
    if (it->second.empty()) {
      it = edge_occ_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [canon, entry] : pool_) {
    for (GraphId id : removed_ids) entry.occurrences.Erase(id);
  }
  db_size_ = db_size_after;
  RecomputeFlags();
}

void FctSet::RecomputeFlags() {
  size_t freq_count = MinCount(config_.sup_min);
  size_t pool_count = MinCount(config_.sup_min / 2.0);

  // Prune trees that fell below the relaxed pool threshold.
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.occurrences.size() < pool_count) {
      it = pool_.erase(it);
    } else {
      ++it;
    }
  }

  // Frequent flags + supertree index by size.
  std::unordered_map<size_t, std::vector<FctEntry*>> by_size;
  for (auto& [canon, entry] : pool_) {
    entry.frequent = entry.occurrences.size() >= freq_count;
    entry.closed = true;
    by_size[entry.tree.NumEdges()].push_back(&entry);
  }

  // Closedness: an equal-support supertree of a pool tree has support at
  // least the pool threshold, so it is itself in the pool (one-edge-larger
  // supertrees of trees are leaf extensions; see tree_miner.h). Equal
  // support + supertree relation implies equal occurrence sets.
  for (auto& [canon, entry] : pool_) {
    size_t sz = entry.tree.NumEdges();
    if (sz >= config_.max_edges) continue;  // cap convention: closed
    auto it = by_size.find(sz + 1);
    if (it == by_size.end()) continue;
    for (FctEntry* super : it->second) {
      if (super->occurrences == entry.occurrences &&
          ContainsSubgraph(entry.tree, super->tree)) {
        entry.closed = false;
        break;
      }
    }
  }
}

std::vector<const FctEntry*> FctSet::FrequentClosedTrees() const {
  std::vector<const FctEntry*> out;
  for (const auto& [canon, entry] : pool_) {
    if (entry.frequent && entry.closed) out.push_back(&entry);
  }
  return out;
}

std::vector<const FctEntry*> FctSet::PoolEntries() const {
  std::vector<const FctEntry*> out;
  out.reserve(pool_.size());
  for (const auto& [canon, entry] : pool_) out.push_back(&entry);
  return out;
}

std::vector<std::pair<EdgeLabelPair, const IdSet*>> FctSet::FrequentEdges()
    const {
  size_t freq_count = MinCount(config_.sup_min);
  std::vector<std::pair<EdgeLabelPair, const IdSet*>> out;
  for (const auto& [lp, occ] : edge_occ_) {
    if (occ.size() >= freq_count) out.emplace_back(lp, &occ);
  }
  return out;
}

std::vector<std::pair<EdgeLabelPair, const IdSet*>> FctSet::InfrequentEdges()
    const {
  size_t freq_count = MinCount(config_.sup_min);
  std::vector<std::pair<EdgeLabelPair, const IdSet*>> out;
  for (const auto& [lp, occ] : edge_occ_) {
    if (!occ.empty() && occ.size() < freq_count) out.emplace_back(lp, &occ);
  }
  return out;
}

size_t FctSet::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [canon, entry] : pool_) {
    bytes += canon.size() + entry.canon.size();
    bytes += entry.occurrences.size() * sizeof(uint32_t);
    bytes += entry.tree.NumVertices() * (sizeof(Label) + sizeof(void*)) +
             entry.tree.NumEdges() * 2 * sizeof(VertexId);
  }
  for (const auto& [lp, occ] : edge_occ_) {
    bytes += sizeof(lp) + occ.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace midas
